"""Tests for the potential-satisfaction checker (the paper's Theorem 4.2
procedure, end to end)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import certify, check_extension, potentially_satisfied
from repro.database import History, vocabulary
from repro.errors import NotSafetyError, NotUniversalError
from repro.eval import evaluate_lasso_db
from repro.logic import parse

V = vocabulary({"Sub": 1, "Fill": 1})


class TestPaperExamples:
    def test_submit_once_clean(self, submit_once, clean_history):
        assert potentially_satisfied(submit_once, clean_history)

    def test_submit_once_violated(self, submit_once, duplicate_history):
        assert not potentially_satisfied(submit_once, duplicate_history)

    def test_fifo_clean(self, fifo_fill, clean_history):
        assert potentially_satisfied(fifo_fill, clean_history)

    def test_fifo_violated(self, fifo_fill, out_of_order_history):
        assert not potentially_satisfied(fifo_fill, out_of_order_history)

    def test_fifo_pending_is_fine(self, fifo_fill, order_vocabulary):
        # Sub 1, Sub 2, Fill not yet: order can still be respected.
        h = History.from_facts(
            order_vocabulary, [[("Sub", (1,))], [("Sub", (2,))]]
        )
        assert potentially_satisfied(fifo_fill, h)

    def test_earliest_detection(self, submit_once, order_vocabulary):
        # The violation becomes irrecoverable exactly at the duplicate.
        states = [[("Sub", (1,))], [], [("Sub", (1,))], []]
        for length in range(1, 5):
            h = History.from_facts(order_vocabulary, states[:length])
            expected = length < 3
            assert potentially_satisfied(submit_once, h) is expected


class TestFragmentEnforcement:
    def test_internal_quantifier_rejected(self):
        h = History.from_facts(V, [[]])
        with pytest.raises(NotUniversalError):
            check_extension(
                parse("forall x . G (exists y . Sub(y))"), h
            )

    def test_non_safety_rejected(self):
        h = History.from_facts(V, [[]])
        with pytest.raises(NotSafetyError):
            check_extension(parse("forall x . F Sub(x)"), h)

    def test_assume_safety_overrides(self):
        h = History.from_facts(V, [[]])
        result = check_extension(
            parse("forall x . F Sub(x)"), h, assume_safety=True
        )
        # The call goes through (its answer is unreliable by design for
        # genuinely non-safety formulas; see examples/safety_analysis.py).
        assert result.remainder is not None


class TestWitnesses:
    def test_certified_witness(self, submit_once, clean_history):
        result = check_extension(
            submit_once, clean_history, want_witness=True
        )
        assert result.potentially_satisfied
        assert certify(result, submit_once)

    def test_witness_extends_history(self, submit_once, clean_history):
        result = check_extension(
            submit_once, clean_history, want_witness=True
        )
        prefix = result.witness.prefix(len(clean_history))
        assert tuple(prefix.states) == tuple(clean_history.states)

    def test_no_witness_on_violation(self, submit_once, duplicate_history):
        result = check_extension(
            submit_once, duplicate_history, want_witness=True
        )
        assert result.witness is None

    def test_certify_requires_witness(self, submit_once, clean_history):
        result = check_extension(submit_once, clean_history)
        with pytest.raises(ValueError):
            certify(result, submit_once)

    def test_fifo_witness_satisfies_original_fotl(
        self, fifo_fill, order_vocabulary
    ):
        h = History.from_facts(
            order_vocabulary, [[("Sub", (1,))], [("Sub", (2,))]]
        )
        result = check_extension(fifo_fill, h, want_witness=True)
        assert result.potentially_satisfied
        assert evaluate_lasso_db(fifo_fill, result.witness)


class TestModes:
    @pytest.mark.parametrize("method", ["buchi", "tableau"])
    def test_methods_agree(self, submit_once, duplicate_history, method):
        assert not potentially_satisfied(
            submit_once, duplicate_history, method=method
        )

    def test_quick_agrees_with_full(self, submit_once, clean_history):
        fast = check_extension(submit_once, clean_history, quick=True)
        slow = check_extension(submit_once, clean_history, quick=False)
        assert fast.potentially_satisfied == slow.potentially_satisfied

    @pytest.mark.slow
    def test_literal_mode_agrees_small(self):
        v = vocabulary({"Sub": 1})
        once = parse("forall x . G (Sub(x) -> X G !Sub(x))")
        good = History.from_facts(v, [[("Sub", (1,))], []])
        bad = History.from_facts(v, [[("Sub", (1,))], [("Sub", (1,))]])
        assert check_extension(once, good, fold=False).potentially_satisfied
        assert not check_extension(
            once, bad, fold=False
        ).potentially_satisfied


class TestRandomizedCertification:
    """Property: whatever the history, a positive answer certifies and a
    negative answer is confirmed by the all-false extension failing."""

    @given(
        data=st.lists(
            st.lists(
                st.tuples(
                    st.sampled_from(["Sub", "Fill"]),
                    st.tuples(st.integers(0, 2)),
                ),
                max_size=2,
            ),
            min_size=1,
            max_size=4,
        ),
        seed=st.integers(0, 30),
    )
    @settings(max_examples=40, deadline=None)
    def test_positive_answers_certify(self, data, seed):
        from repro.workloads import ConstraintConfig, random_universal_constraint

        constraint = random_universal_constraint(
            V, ConstraintConfig(quantifiers=1, size=4, seed=seed)
        )
        history = History.from_facts(V, data)
        result = check_extension(constraint, history, want_witness=True)
        if result.potentially_satisfied:
            assert certify(result, constraint)
