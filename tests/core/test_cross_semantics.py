"""Cross-layer semantic consistency: the Theorem 4.1 translation preserves
truth, not just satisfiability.

For a universal constraint ``phi`` and a lasso database whose active domain
is covered by the grounding, the first-order evaluator's verdict on the
database must equal the propositional evaluator's verdict of ``phi_D`` on
the translated propositional lasso.  This is the semantic heart of
Theorem 4.1, checked directly (the checker tests only exercise the
satisfiability consequence).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reduction import reduce_universal, state_to_props
from repro.database import History, LassoDatabase, vocabulary
from repro.eval import evaluate_lasso_db
from repro.logic import parse
from repro.logic.classify import require_universal
from repro.ptl import LassoModel, evaluate_lasso
from repro.workloads import ConstraintConfig, random_universal_constraint

V = vocabulary({"Sub": 1, "Fill": 1})

CONSTRAINTS = [
    "forall x . G (Sub(x) -> X G !Sub(x))",
    "forall x . G !(Sub(x) & Fill(x))",
    "forall x y . G ((Sub(x) & Sub(y)) -> x = y | X !Sub(x))",
    "forall x . (!Fill(x)) W Sub(x)",
]


def _translate(db: LassoDatabase, reduction):
    return LassoModel(
        stem=tuple(
            state_to_props(state, reduction.domain, fold=True)
            for state in db.stem
        ),
        loop=tuple(
            state_to_props(state, reduction.domain, fold=True)
            for state in db.loop
        ),
    )


def _lasso_from_facts(stem_facts, loop_facts):
    stem = [
        History.from_facts(V, [facts]).states[0] for facts in stem_facts
    ]
    loop = [
        History.from_facts(V, [facts]).states[0] for facts in loop_facts
    ]
    return LassoDatabase(vocabulary=V, stem=tuple(stem), loop=tuple(loop))


FACTS = st.lists(
    st.tuples(
        st.sampled_from(["Sub", "Fill"]), st.tuples(st.integers(0, 2))
    ),
    max_size=2,
)


class TestTranslationPreservesTruth:
    @pytest.mark.parametrize("text", CONSTRAINTS)
    def test_fixed_lassos(self, text):
        constraint = parse(text)
        info = require_universal(constraint)
        db = _lasso_from_facts(
            [[("Sub", (1,))], [("Fill", (1,))]],
            [[("Sub", (2,))], [("Fill", (2,))]],
        )
        reduction = reduce_universal(db.prefix(4), info)
        fotl_truth = evaluate_lasso_db(constraint, db)
        ptl_truth = evaluate_lasso(
            reduction.formula, _translate(db, reduction), 0
        )
        assert fotl_truth == ptl_truth

    @given(
        stem=st.lists(FACTS, max_size=2),
        loop=st.lists(FACTS, min_size=1, max_size=2),
        seed=st.integers(0, 20),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_lassos_and_constraints(self, stem, loop, seed):
        constraint = random_universal_constraint(
            V, ConstraintConfig(quantifiers=1, size=4, seed=seed)
        )
        info = require_universal(constraint)
        db = _lasso_from_facts(stem or [[]], loop)
        # Ground over the lasso's full content (its prefix of quotient
        # length covers every element).
        reduction = reduce_universal(db.prefix(db.positions()), info)
        fotl_truth = evaluate_lasso_db(constraint, db)
        ptl_truth = evaluate_lasso(
            reduction.formula, _translate(db, reduction), 0
        )
        assert fotl_truth == ptl_truth
