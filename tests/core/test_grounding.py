"""Tests for the grounding machinery (Theorem 4.1's letters and folding)."""

import pytest

from repro.core.grounding import (
    Anon,
    EqAtom,
    GroundContext,
    RelAtom,
    build_axioms,
    decide_equality,
    eq_prop,
    ground,
    rel_prop,
)
from repro.errors import ClassificationError, SchemaError
from repro.logic import parse, var
from repro.logic.transform import strip_universal_prefix
from repro.ptl import PFALSE, PTRUE, PAlways, Prop, evaluate_lasso, LassoModel

x, y = var("x"), var("y")


def matrix_of(text):
    _prefix, matrix = strip_universal_prefix(parse(text))
    return matrix


class TestElements:
    def test_anon_ordering_and_str(self):
        assert Anon(1) != Anon(2)
        assert str(Anon(2)) == "z2"

    def test_decide_equality(self):
        assert decide_equality(3, 3)
        assert not decide_equality(3, 4)
        assert not decide_equality(3, Anon(1))
        assert decide_equality(Anon(1), Anon(1))
        assert not decide_equality(Anon(1), Anon(2))

    def test_rel_atom_concrete(self):
        assert RelAtom("p", (1, 2)).is_concrete()
        assert not RelAtom("p", (1, Anon(1))).is_concrete()

    def test_atom_strings(self):
        assert str(RelAtom("p", (1, Anon(2)))) == "p(1,z2)"
        assert str(EqAtom(1, Anon(1))) == "(1=z1)"


class TestFoldedGrounding:
    CONTEXT = GroundContext(constant_bindings={}, fold=True)

    def test_atom_over_concrete_elements(self):
        m = matrix_of("forall x . G Sub(x)")
        g = ground(m, {x: 1}, self.CONTEXT)
        assert isinstance(g, PAlways)
        assert g.body == Prop(RelAtom("Sub", (1,)))

    def test_atom_with_anonymous_folds_false(self):
        m = matrix_of("forall x . Sub(x)")
        assert ground(m, {x: Anon(1)}, self.CONTEXT) == PFALSE

    def test_equality_folds(self):
        m = matrix_of("forall x y . x = y")
        assert ground(m, {x: 1, y: 1}, self.CONTEXT) == PTRUE
        assert ground(m, {x: 1, y: 2}, self.CONTEXT) == PFALSE
        assert ground(m, {x: Anon(1), y: 1}, self.CONTEXT) == PFALSE
        assert ground(m, {x: Anon(1), y: Anon(1)}, self.CONTEXT) == PTRUE

    def test_whole_instance_can_fold_to_true(self):
        # G !(Sub(z1) & ...) folds to true: Sub(z1) is false.
        m = matrix_of("forall x . G !(Sub(x))")
        assert ground(m, {x: Anon(1)}, self.CONTEXT) == PTRUE

    def test_constant_resolution(self):
        context = GroundContext(constant_bindings={"Vip": 7}, fold=True)
        m = matrix_of("forall x . Sub(Vip)")
        g = ground(m, {x: 1}, context)
        assert g == Prop(RelAtom("Sub", (7,)))

    def test_unbound_constant_raises(self):
        m = matrix_of("forall x . Sub(Vip)")
        with pytest.raises(SchemaError):
            ground(m, {x: 1}, self.CONTEXT)

    def test_unassigned_variable_raises(self):
        m = matrix_of("forall x y . Sub(x) & Sub(y)")
        with pytest.raises(ClassificationError):
            ground(m, {x: 1}, self.CONTEXT)

    def test_internal_quantifier_raises(self):
        m = matrix_of("forall x . G (exists y . q(x, y))")
        with pytest.raises(ClassificationError):
            ground(m, {x: 1}, self.CONTEXT)


class TestLiteralGrounding:
    CONTEXT = GroundContext(constant_bindings={}, fold=False)

    def test_equality_stays_symbolic(self):
        m = matrix_of("forall x y . x = y")
        g = ground(m, {x: 1, y: 2}, self.CONTEXT)
        assert g == Prop(EqAtom(1, 2))

    def test_anonymous_atom_stays(self):
        m = matrix_of("forall x . Sub(x)")
        g = ground(m, {x: Anon(1)}, self.CONTEXT)
        assert g == Prop(RelAtom("Sub", (Anon(1),)))

    def test_axioms_fix_equality_letters(self):
        axioms = build_axioms((1, 2, Anon(1)), {"Sub": 1}, {})
        # In any model of the axioms, (1=1) holds and (1=2) fails; check on
        # the intended model directly.
        intended = frozenset(
            {eq_prop(1, 1), eq_prop(2, 2), eq_prop(Anon(1), Anon(1))}
        )
        model = LassoModel(stem=(), loop=(intended,))
        assert evaluate_lasso(axioms, model, 0)
        # A model claiming 1=2 violates the axioms.
        wrong = LassoModel(
            stem=(), loop=(intended | {eq_prop(1, 2), eq_prop(2, 1)},)
        )
        assert not evaluate_lasso(axioms, wrong, 0)

    def test_axioms_forbid_facts_on_anonymous(self):
        axioms = build_axioms((1, Anon(1)), {"Sub": 1}, {})
        identity = frozenset(
            {eq_prop(1, 1), eq_prop(Anon(1), Anon(1))}
        )
        bad = LassoModel(
            stem=(),
            loop=(identity | {rel_prop("Sub", (Anon(1),))},),
        )
        assert not evaluate_lasso(axioms, bad, 0)

    def test_axioms_fix_every_equality_letter(self):
        # Like the paper's Axiom_D, the axioms pin the full equality
        # structure: no model can merge two concrete elements, whatever
        # facts it adds (congruence never fires because distinctness
        # already excludes the merge).
        axioms = build_axioms((1, 2), {"Sub": 1}, {})
        merged = frozenset(
            {
                eq_prop(1, 1),
                eq_prop(2, 2),
                eq_prop(1, 2),
                eq_prop(2, 1),
                rel_prop("Sub", (1,)),
                rel_prop("Sub", (2,)),
            }
        )
        assert not evaluate_lasso(
            axioms, LassoModel(stem=(), loop=(merged,)), 0
        )

    def test_axioms_tolerate_arbitrary_concrete_facts(self):
        axioms = build_axioms((1, 2), {"Sub": 1}, {})
        intended = frozenset(
            {
                eq_prop(1, 1),
                eq_prop(2, 2),
                rel_prop("Sub", (1,)),
                rel_prop("Sub", (2,)),
            }
        )
        assert evaluate_lasso(
            axioms, LassoModel(stem=(), loop=(intended,)), 0
        )
