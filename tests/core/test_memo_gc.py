"""Memo durability under garbage collection.

The durability sweep replaced every ``id()``-keyed memo with keys that
hold the formula node itself (:mod:`repro.eval.finite`,
:mod:`repro.eval.lasso`): FOTL nodes are plain non-interned values, so
an id-keyed entry neither pins its node alive nor survives id recycling
— a collected node's id reused by a *different* formula would satisfy
the lookup and return a stale (wrong) verdict.  These tests force that
failure mode: every step discards its formula objects, allocates fresh
structurally-distinct garbage to encourage id reuse, runs a full
``gc.collect()``, and checks verdicts against an undisturbed reference.
The monitor and trigger sweeps cover the interned side too (progression
kernel rows, the trigger remainder memo), which key on stable kernel
ids/interned nodes by construction.
"""

import gc

from repro.core import IntegrityMonitor, TriggerManager, Trigger
from repro.database import DatabaseState, History, LassoDatabase, vocabulary
from repro.eval.finite import evaluate_finite, evaluate_past
from repro.eval.lasso import evaluate_lasso_db
from repro.logic import parse

V = vocabulary({"Sub": 1, "Fill": 1})

TRACE = [
    [("Sub", (1,))],
    [("Sub", (2,))],
    [("Fill", (1,)), ("Sub", (1,))],
    [],
    [("Fill", (2,))],
]


def _churn(step: int) -> None:
    """Allocate and drop many distinct formula nodes, then collect —
    maximizing the chance a recycled id lands where a stale
    id-keyed memo entry would be consulted."""
    garbage = [
        parse("forall x . G (Sub(x) -> X G !Fill(x))")
        for _ in range(10 + step)
    ]
    garbage += [parse("exists x . F Fill(x)") for _ in range(10)]
    del garbage
    gc.collect()


class TestEvalMemosUnderGC:
    def test_finite_eval_verdicts_stable(self):
        history = History.from_facts(V, TRACE)
        text = "G ((exists x . Sub(x)) -> F (exists y . Fill(y)))"
        expected = evaluate_finite(parse(text), history)
        for step in range(8):
            _churn(step)
            # A freshly parsed (new object, possibly recycled-id) copy
            # must evaluate identically.
            assert evaluate_finite(parse(text), history) == expected

    def test_past_eval_verdicts_stable(self):
        history = History.from_facts(V, TRACE)
        text = "forall x . (Fill(x) -> Y O Sub(x))"
        expected = evaluate_past(parse(text), history)
        for step in range(8):
            _churn(step)
            assert evaluate_past(parse(text), history) == expected

    def test_lasso_eval_verdicts_stable(self):
        history = History.from_facts(V, TRACE)
        db = LassoDatabase.constant_extension(history)
        text = "G ((exists x . Sub(x)) -> F (exists y . Fill(y)))"
        expected = evaluate_lasso_db(parse(text), db)
        for step in range(8):
            _churn(step)
            assert evaluate_lasso_db(parse(text), db) == expected


class TestMonitorUnderGC:
    def test_compiled_kernel_verdicts_stable(self):
        """Progression-kernel memos (transition rows, replay caches) key
        on kernel-interned ids with strong references — GC churn between
        steps must not perturb a single verdict."""
        for engine in ("bitset", "compiled"):
            reference = IntegrityMonitor(
                {"once": parse("forall x . G (Sub(x) -> X G !Sub(x))")},
                History.empty(V),
                engine=engine,
            )
            stressed = IntegrityMonitor(
                {"once": parse("forall x . G (Sub(x) -> X G !Sub(x))")},
                History.empty(V),
                engine=engine,
            )
            for step, facts in enumerate(TRACE + [[("Sub", (2,))]]):
                state = DatabaseState.from_facts(V, facts)
                expected = reference.append_state(state)
                _churn(step)
                got = stressed.append_state(state)
                assert (got.satisfied, got.new_violations) == (
                    expected.satisfied,
                    expected.new_violations,
                )
            assert stressed.violations() == reference.violations()


class TestTriggersUnderGC:
    def test_trigger_firings_stable(self):
        """The trigger remainder memo is identity-keyed on *interned*
        remainders (pinned by the manager) — churn plus collection must
        not change which substitutions fire."""

        def build():
            return TriggerManager(
                [Trigger("dup", parse("F (Sub(x) & X F Sub(x))"))],
                lint="off",
            )

        reference, stressed = build(), build()
        prefix: list[list[tuple[str, tuple[int, ...]]]] = []
        for step, facts in enumerate(TRACE + [[("Sub", (1,))]]):
            prefix.append(facts)
            history = History.from_facts(V, prefix)
            expected = reference.check(history)
            _churn(step)
            got = stressed.check(history)
            assert [
                (f.trigger, f.substitution, f.instant) for f in got
            ] == [
                (f.trigger, f.substitution, f.instant) for f in expected
            ]
        assert [f.trigger for f in stressed.log] == [
            f.trigger for f in reference.log
        ]
