"""Tests for the online integrity monitor (strategies, stats, violations)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import IntegrityMonitor
from repro.database import DatabaseState, History, Update, vocabulary
from repro.errors import NotUniversalError
from repro.logic import parse

V = vocabulary({"Sub": 1, "Fill": 1})
SUBMIT_ONCE = parse("forall x . G (Sub(x) -> X G !Sub(x))")


def monitor_with(constraints, strategy="incremental", **kwargs):
    return IntegrityMonitor(
        constraints, History.empty(V), strategy=strategy, **kwargs
    )


class TestBasics:
    def test_detects_duplicate(self, submit_once):
        m = monitor_with({"once": submit_once})
        m.apply(Update.insert(("Sub", (1,))))
        report = m.apply(Update.insert(("Sub", (1,))))
        # Update semantics: facts persist, so the duplicate appears at the
        # second instant already (Sub(1) holds at t=1 and t=2).
        assert not report.all_satisfied

    def test_event_style_duplicate(self, submit_once):
        m = monitor_with({"once": submit_once})
        m.append_state(DatabaseState.from_facts(V, [("Sub", (1,))]))
        m.append_state(DatabaseState.empty(V))
        report = m.append_state(
            DatabaseState.from_facts(V, [("Sub", (1,))])
        )
        assert report.new_violations == ("once",)
        assert m.violations() == {"once": 3}

    def test_clean_run(self, submit_once, fifo_fill):
        m = monitor_with({"once": submit_once, "fifo": fifo_fill})
        for facts in ([("Sub", (1,))], [("Sub", (2,))], [("Fill", (1,))],
                      [("Fill", (2,))]):
            report = m.append_state(DatabaseState.from_facts(V, facts))
            assert report.all_satisfied
        assert m.violations() == {}

    def test_violation_is_sticky(self, submit_once):
        m = monitor_with({"once": submit_once})
        m.append_state(DatabaseState.from_facts(V, [("Sub", (1,))]))
        m.append_state(DatabaseState.from_facts(V, [("Sub", (1,))]))
        report = m.append_state(DatabaseState.empty(V))
        assert not report.satisfied["once"]
        assert report.new_violations == ()

    def test_unnamed_constraints_get_names(self, submit_once):
        m = monitor_with([submit_once])
        assert m.is_satisfied("constraint_0")

    def test_unknown_name(self, submit_once):
        m = monitor_with({"once": submit_once})
        with pytest.raises(KeyError):
            m.is_satisfied("nope")

    def test_fragment_enforced_at_construction(self):
        with pytest.raises(NotUniversalError):
            monitor_with({"bad": parse("forall x . G (exists y . Sub(y))")})

    def test_invalid_strategy(self, submit_once):
        with pytest.raises(ValueError):
            monitor_with({"once": submit_once}, strategy="telepathy")

    def test_spare_requires_folding(self, submit_once):
        with pytest.raises(ValueError):
            monitor_with({"once": submit_once}, strategy="spare", fold=False)

    def test_history_property_grows(self, submit_once):
        m = monitor_with({"once": submit_once})
        assert m.now == 0
        m.apply(Update.insert(("Sub", (1,))))
        assert m.now == 1
        assert len(m.history) == 2


class TestStrategies:
    TRACES = [
        # (name, list of per-instant fact lists)
        ("clean", [[("Sub", (1,))], [("Sub", (2,))], [("Fill", (1,))]]),
        ("dup", [[("Sub", (1,))], [], [("Sub", (1,))]]),
        ("fifo_break", [[("Sub", (1,))], [("Sub", (2,))], [("Fill", (2,))]]),
        ("quiet", [[], [], []]),
    ]

    @pytest.mark.parametrize("trace_name,trace", TRACES)
    def test_all_strategies_agree(
        self, submit_once, fifo_fill, trace_name, trace
    ):
        outcomes = {}
        for strategy in ("scratch", "incremental", "spare"):
            m = monitor_with(
                {"once": submit_once, "fifo": fifo_fill},
                strategy=strategy,
            )
            for facts in trace:
                m.append_state(DatabaseState.from_facts(V, facts))
            outcomes[strategy] = m.violations()
        assert outcomes["scratch"] == outcomes["incremental"]
        assert outcomes["scratch"] == outcomes["spare"]

    def test_incremental_regrounds_only_on_new_elements(self, submit_once):
        m = monitor_with({"once": submit_once}, strategy="incremental")
        m.append_state(DatabaseState.from_facts(V, [("Sub", (1,))]))
        after_first = m.stats()["once"].regrounds
        # Same element again: no reground needed.
        m.append_state(DatabaseState.from_facts(V, [("Fill", (1,))]))
        assert m.stats()["once"].regrounds == after_first
        # Fresh element: reground.
        m.append_state(DatabaseState.from_facts(V, [("Sub", (9,))]))
        assert m.stats()["once"].regrounds == after_first + 1

    def test_scratch_regrounds_every_update(self, submit_once):
        m = monitor_with({"once": submit_once}, strategy="scratch")
        base = m.stats()["once"].regrounds
        for _ in range(3):
            m.append_state(DatabaseState.empty(V))
        assert m.stats()["once"].regrounds == base + 3

    def test_spare_avoids_regrounds(self, submit_once):
        m = monitor_with({"once": submit_once}, strategy="spare", spare=8)
        base = m.stats()["once"].regrounds
        for element in range(5):
            m.append_state(
                DatabaseState.from_facts(V, [("Sub", (element,))])
            )
        assert m.stats()["once"].regrounds == base
        assert m.violations() == {}

    def test_spare_pool_exhaustion_falls_back(self, submit_once):
        m = monitor_with({"once": submit_once}, strategy="spare", spare=1)
        base = m.stats()["once"].regrounds
        for element in range(60, 64):
            m.append_state(
                DatabaseState.from_facts(V, [("Sub", (element,))])
            )
        # Pool of 1 cannot absorb 4 fresh elements: must have reground.
        assert m.stats()["once"].regrounds > base
        assert m.violations() == {}

    def test_stats_track_time_and_cache_hits(self, submit_once):
        m = monitor_with({"once": submit_once}, strategy="incremental")
        # Sub(1) creates a live obligation (G !Sub(1) from then on); the
        # quiet states leave the remainder fixed.
        m.append_state(DatabaseState.from_facts(V, [("Sub", (1,))]))
        for _ in range(4):
            m.append_state(DatabaseState.empty(V))
        stats = m.stats()["once"]
        assert stats.progressions >= 5
        assert stats.progress_time > 0.0
        assert stats.sat_time > 0.0
        # The remainder stabilizes on the quiet states, so the
        # monitor-wide satisfiability memo absorbs the later decisions...
        assert stats.sat_calls >= 1
        assert stats.sat_cache_hits >= 3
        # ...and the progression memo sees the identical
        # (formula, relevant-state-slice) pair again and again.
        assert stats.progress_cache_hits >= 3

    def test_sat_memo_shared_across_constraints(self, submit_once):
        # Two entries with the same constraint produce identical (interned)
        # remainders; the second must hit the monitor-wide memo.
        m = monitor_with(
            {"a": submit_once, "b": submit_once}, strategy="incremental"
        )
        m.append_state(DatabaseState.from_facts(V, [("Sub", (1,))]))
        m.append_state(DatabaseState.empty(V))
        stats = m.stats()
        combined_hits = stats["a"].sat_cache_hits + stats["b"].sat_cache_hits
        assert combined_hits >= 1
        # Identical constraints yield identical interned remainders, so
        # only one entry ever pays for a satisfiability call.
        assert stats["b"].sat_calls == 0

    @given(
        trace=st.lists(
            st.lists(
                st.tuples(
                    st.sampled_from(["Sub", "Fill"]),
                    st.tuples(st.integers(0, 2)),
                ),
                max_size=2,
            ),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_strategies_agree_on_random_traces(self, trace):
        outcomes = []
        for strategy in ("scratch", "incremental", "spare"):
            m = monitor_with({"once": SUBMIT_ONCE}, strategy=strategy)
            for facts in trace:
                m.append_state(DatabaseState.from_facts(V, facts))
            outcomes.append(m.violations())
        assert outcomes[0] == outcomes[1] == outcomes[2]


class TestAgainstChecker:
    """The monitor's verdicts coincide with from-scratch extension checks
    at every instant."""

    @given(
        trace=st.lists(
            st.lists(
                st.tuples(
                    st.sampled_from(["Sub"]),
                    st.tuples(st.integers(0, 2)),
                ),
                max_size=2,
            ),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_monitor_matches_checker(self, trace):
        from repro.core import potentially_satisfied

        m = monitor_with({"once": SUBMIT_ONCE})
        states = [DatabaseState.empty(V)]
        for facts in trace:
            state = DatabaseState.from_facts(V, facts)
            states.append(state)
            report = m.append_state(state)
            history = History(vocabulary=V, states=tuple(states))
            assert report.satisfied["once"] == potentially_satisfied(
                SUBMIT_ONCE, history
            )
