"""Pruned-vs-unpruned equivalence for the monitor and trigger manager.

The dependence-pruned paths (idle transitions, fixed-point decision skips,
trigger sweep skips) must be observationally identical to the exhaustive
ones: same per-instant verdicts, same violation instants, same remainders,
same firing logs.  The unpruned path is kept as the in-tree oracle, so
these tests are the soundness argument of DESIGN.md §9 run in anger.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import IntegrityMonitor
from repro.core.triggers import Trigger, TriggerManager
from repro.database import DatabaseState, History, Update, vocabulary
from repro.logic import parse

V = vocabulary({"Sub": 1, "Fill": 1})
SUBMIT_ONCE = parse("forall x . G (Sub(x) -> X G !Sub(x))")
FIFO_FILL = parse(
    "forall x y . G !(x != y & Sub(x) & ((!Fill(x)) U "
    "(Sub(y) & ((!Fill(x)) U (Fill(y) & !Fill(x))))))"
)
CONSTRAINTS = {"once": SUBMIT_ONCE, "fifo": FIFO_FILL}

traces = st.lists(
    st.lists(
        st.tuples(
            st.sampled_from(["Sub", "Fill"]),
            st.tuples(st.integers(0, 2)),
        ),
        max_size=2,
    ),
    min_size=1,
    max_size=4,
)


def monitor_with(constraints, **kwargs):
    return IntegrityMonitor(constraints, History.empty(V), **kwargs)


class TestMonitorEquivalence:
    @given(trace=traces, strategy=st.sampled_from(["incremental", "spare"]))
    @settings(max_examples=200, deadline=None)
    def test_pruned_matches_unpruned(self, trace, strategy):
        pruned = monitor_with(CONSTRAINTS, strategy=strategy, prune=True)
        naive = monitor_with(CONSTRAINTS, strategy=strategy, prune=False)
        for facts in trace:
            state = DatabaseState.from_facts(V, facts)
            rp = pruned.append_state(state)
            rn = naive.append_state(state)
            assert dict(rp.satisfied) == dict(rn.satisfied)
            assert rp.new_violations == rn.new_violations
            # Remainders are interned, so equality here is identity: the
            # pruned run's Lemma 4.2 state is bit-for-bit the naive one's.
            assert pruned.remainders() == naive.remainders()
        assert pruned.violations() == naive.violations()

    @given(trace=traces)
    @settings(max_examples=25, deadline=None)
    def test_pruned_matches_scratch_oracle(self, trace):
        pruned = monitor_with(CONSTRAINTS, strategy="incremental", prune=True)
        oracle = monitor_with(CONSTRAINTS, strategy="scratch")
        for facts in trace:
            state = DatabaseState.from_facts(V, facts)
            assert (
                pruned.append_state(state).new_violations
                == oracle.append_state(state).new_violations
            )
        assert pruned.violations() == oracle.violations()


class TestPruningCounters:
    def quiet_run(self, **kwargs):
        # Every delta inserts/deletes only Fill facts, which submit_once
        # never mentions: all four instants are idle for it.
        m = monitor_with({"once": SUBMIT_ONCE}, **kwargs)
        for element in (1, 2, 1, 2):
            m.append_state(
                DatabaseState.from_facts(V, [("Fill", (element,))])
            )
        return m

    def test_quiet_instants_take_the_idle_path(self):
        m = self.quiet_run()
        stats = m.stats()["once"]
        assert stats.idle_steps == 4
        assert stats.skipped_constraints >= 3
        assert m.violations() == {}

    def test_unpruned_counters_stay_zero(self):
        stats = self.quiet_run(prune=False).stats()["once"]
        assert stats.idle_steps == 0
        assert stats.skipped_constraints == 0

    def test_scratch_is_never_pruned(self):
        stats = self.quiet_run(strategy="scratch").stats()["once"]
        assert stats.idle_steps == 0
        assert stats.skipped_constraints == 0

    def test_dependency_index_exposed(self):
        m = monitor_with(CONSTRAINTS)
        assert m.dependency_index.touched_by_update(
            Update.insert(("Fill", (1,)))
        ) == {"fifo"}

    def test_violation_still_detected_after_idle_stretch(self):
        m = monitor_with({"once": SUBMIT_ONCE})
        m.append_state(DatabaseState.from_facts(V, [("Sub", (1,))]))
        for _ in range(3):
            m.append_state(DatabaseState.from_facts(V, [("Fill", (2,))]))
        report = m.append_state(DatabaseState.from_facts(V, [("Sub", (1,))]))
        assert report.new_violations == ("once",)


class TestMonitorStatsRoundTrip:
    def test_as_dict_from_dict(self):
        m = monitor_with({"once": SUBMIT_ONCE})
        m.append_state(DatabaseState.from_facts(V, [("Sub", (1,))]))
        stats = m.stats()["once"]
        data = stats.as_dict()
        assert data["progressions"] == stats.progressions
        assert type(stats).from_dict(data) == stats

    def test_reset_zeroes_every_counter(self):
        m = monitor_with({"once": SUBMIT_ONCE})
        m.append_state(DatabaseState.from_facts(V, [("Sub", (1,))]))
        m.append_state(DatabaseState.from_facts(V, [("Fill", (1,))]))
        assert any(v for v in m.stats()["once"].as_dict().values())
        m.reset()
        assert all(not v for v in m.stats()["once"].as_dict().values())
        # Monitoring state survives the counter reset.
        assert m.now == 2
        assert m.violations() == {}


RESUBMIT = parse("F (Sub(x) & X F Sub(x))")


def run_triggers(trace, prune):
    manager = TriggerManager(
        [Trigger("resub", RESUBMIT)], lint="off", prune=prune
    )
    history = History.empty(V)
    for facts in trace:
        history = history.extended(DatabaseState.from_facts(V, facts))
        manager.check(history)
    return manager


class TestTriggerEquivalence:
    @given(trace=traces)
    @settings(max_examples=40, deadline=None)
    def test_pruned_matches_unpruned_firings(self, trace):
        assert run_triggers(trace, True).log == run_triggers(trace, False).log

    def test_quiet_sweeps_are_skipped(self):
        trace = [[("Sub", (1,))], [], [], [("Sub", (1,))]]
        pruned = run_triggers(trace, True)
        naive = run_triggers(trace, False)
        assert pruned.skipped_sweeps > 0
        assert naive.skipped_sweeps == 0
        assert pruned.log == naive.log
        # The resubmission at the last instant is still caught after the
        # skipped sweeps.
        assert any(f.instant == 4 for f in pruned.log)
