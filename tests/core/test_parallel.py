"""Parallel fan-out equals the serial run, exactly.

The process-pool paths (constraint partitioning in ``run_monitor``,
substitution chunking in ``TriggerManager``) must produce byte-identical
reports, violation instants and firings — parallelism is an execution
detail, never a semantic one.
"""

from __future__ import annotations

import pytest

from repro.core import run_monitor
from repro.core.parallel import parallel_map, resolve_jobs, split_chunks
from repro.core.triggers import Trigger, TriggerManager
from repro.database.history import History
from repro.logic.parser import parse
from repro.workloads.orders import (
    ORDER_VOCABULARY,
    OrderWorkloadConfig,
    generate_orders,
    trace_with_duplicate,
)


class TestChunking:
    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(-1) >= 1

    def test_split_chunks_partitions_in_order(self):
        items = list(range(10))
        for chunks in (1, 2, 3, 4, 10, 99):
            parts = split_chunks(items, chunks)
            assert [x for part in parts for x in part] == items
            assert all(parts)
            assert len(parts) <= max(1, chunks)
            sizes = [len(part) for part in parts]
            assert max(sizes) - min(sizes) <= 1

    def test_split_chunks_empty(self):
        assert split_chunks([], 4) == []

    def test_parallel_map_preserves_order(self):
        items = list(range(7))
        assert parallel_map(str, items, jobs=1) == [str(i) for i in items]
        assert parallel_map(str, items, jobs=3) == [str(i) for i in items]


def _monitor_fixture():
    trace = generate_orders(
        OrderWorkloadConfig(length=10, arrival_probability=0.5, seed=7)
    )
    constraints = {
        "once": parse("forall x . G (Sub(x) -> X G !Sub(x))"),
        "filled_once": parse("forall x . G (Fill(x) -> X G !Fill(x))"),
        "fifo": parse(
            "forall x y . G !(x != y & Sub(x) & ((!Fill(x)) U "
            "(Sub(y) & ((!Fill(x)) U (Fill(y) & !Fill(x))))))"
        ),
    }
    return constraints, History.empty(ORDER_VOCABULARY), trace.states()


class TestMonitorEquivalence:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_reports_and_violations_identical(self, jobs):
        constraints, initial, states = _monitor_fixture()
        serial = run_monitor(constraints, initial, states, jobs=1)
        fanned = run_monitor(constraints, initial, states, jobs=jobs)
        assert fanned.reports == serial.reports
        assert fanned.violations == serial.violations
        assert set(fanned.stats) == set(serial.stats)

    def test_reports_keep_declaration_order(self):
        constraints, initial, states = _monitor_fixture()
        fanned = run_monitor(constraints, initial, states, jobs=3)
        for report in fanned.reports:
            assert list(report.satisfied) == list(constraints)

    def test_kwargs_forwarded(self):
        constraints, initial, states = _monitor_fixture()
        reference = run_monitor(
            constraints, initial, states, jobs=2, engine="reference"
        )
        bitset = run_monitor(constraints, initial, states, jobs=1)
        assert reference.reports == bitset.reports


def _trigger_sweep(jobs: int):
    trace = trace_with_duplicate(10, violate_at=5, seed=21)
    states = trace.states()
    manager = TriggerManager(
        [
            Trigger("resubmitted", parse("F (Sub(x) & X F Sub(x))")),
            Trigger("double_fill", parse("F (Fill(x) & X F Fill(x))")),
        ],
        jobs=jobs,
    )
    for upto in range(1, len(states) + 1):
        manager.check(
            History(
                vocabulary=ORDER_VOCABULARY, states=tuple(states[:upto])
            )
        )
    return manager


class TestTriggerEquivalence:
    def test_firings_identical_across_jobs(self):
        serial = _trigger_sweep(jobs=1)
        fanned = _trigger_sweep(jobs=4)
        assert serial.log == fanned.log
        assert serial.log  # the duplicate workload must fire

    def test_remainder_memo_hits(self):
        """Quiet instants progress ¬Cθ to the same interned remainder, so
        the Lemma 4.2 decision is made once and memoized thereafter."""
        manager = _trigger_sweep(jobs=1)
        assert manager.decisions > 0
        assert manager.memo_hits > 0
        assert manager.memo_hits > manager.decisions

    def test_engine_validated(self):
        with pytest.raises(ValueError):
            TriggerManager([], engine="nonsense")
