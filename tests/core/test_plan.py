"""Dispatch planning: plan serialization and planned-monitor equivalence.

The planner may only change *how much work* each verdict costs, never the
verdict: a :class:`PlannedMonitor` must report exactly the satisfied
flags, violation instants, and remainders of an unplanned
:class:`IntegrityMonitor` on the shared (future-only) fragment.  The
hypothesis sweep below pins that over strategies × prune, the same way
the pruned and compiled engines were pinned to the reference one.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import IntegrityMonitor, PlannedMonitor, plan_constraints
from repro.core.plan import ConstraintPlan, MonitorPlan
from repro.database import DatabaseState, History, Update, vocabulary
from repro.logic import parse

V = vocabulary({"Sub": 1, "Fill": 1})
SUBMIT_ONCE = parse("forall x . G (Sub(x) -> X G !Sub(x))")
FIFO_FILL = parse(
    "forall x y . G !(x != y & Sub(x) & ((!Fill(x)) U "
    "(Sub(y) & ((!Fill(x)) U (Fill(y) & !Fill(x))))))"
)
EVENTUAL = parse("forall x . F Sub(x)")
RESPONSE = parse("forall x . G F Sub(x)")
AUDIT = parse("forall x . G (Fill(x) -> Y O Sub(x))")
CONSTRAINTS = {"once": SUBMIT_ONCE, "fifo": FIFO_FILL}

traces = st.lists(
    st.lists(
        st.tuples(
            st.sampled_from(["Sub", "Fill"]),
            st.tuples(st.integers(0, 2)),
        ),
        max_size=2,
    ),
    min_size=1,
    max_size=4,
)

plans = st.builds(
    MonitorPlan,
    entries=st.tuples(
        *[
            st.builds(
                ConstraintPlan,
                name=st.just(f"c{i}"),
                hierarchy=st.sampled_from(
                    ["past-closed", "bounded-future", "safety",
                     "co-safety", "general"]
                ),
                backend=st.sampled_from(
                    ["pasteval", "progression-safety",
                     "progression-cosafety", "progression-full"]
                ),
                lookahead=st.none() | st.integers(0, 9),
                reason=st.text(max_size=40),
            )
            for i in range(3)
        ]
    ),
)


class TestMonitorPlan:
    def test_plan_constraints(self):
        plan = plan_constraints(
            {"once": SUBMIT_ONCE, "audit": AUDIT, "live": RESPONSE}
        )
        assert plan["once"].backend == "progression-safety"
        assert plan["audit"].backend == "pasteval"
        assert plan["live"].backend == "progression-full"
        assert plan.routed_off_full() == 2
        assert plan.by_class() == {
            "safety": 1, "past-closed": 1, "general": 1,
        }
        assert plan.by_backend() == {
            "progression-safety": 1, "pasteval": 1, "progression-full": 1,
        }

    def test_sequence_names_match_monitor(self):
        plan = plan_constraints([SUBMIT_ONCE, EVENTUAL])
        assert [entry.name for entry in plan.entries] == [
            "constraint_0", "constraint_1",
        ]

    def test_getitem_unknown_raises(self):
        plan = plan_constraints({"once": SUBMIT_ONCE})
        try:
            plan["nope"]
        except KeyError:
            pass
        else:  # pragma: no cover - defensive
            raise AssertionError("expected KeyError")

    @given(plan=plans)
    @settings(max_examples=100, deadline=None)
    def test_to_dict_round_trip(self, plan):
        assert MonitorPlan.from_dict(plan.to_dict()) == plan

    def test_from_dict_rejects_unknown_version(self):
        try:
            MonitorPlan.from_dict({"version": 99, "entries": []})
        except ValueError:
            pass
        else:  # pragma: no cover - defensive
            raise AssertionError("expected ValueError")


class TestPlannedEquivalence:
    """Planned vs unplanned verdicts on the future-only fragment."""

    @given(
        trace=traces,
        strategy=st.sampled_from(["scratch", "incremental", "spare"]),
        prune=st.booleans(),
    )
    @settings(max_examples=200, deadline=None)
    def test_planned_matches_unplanned(self, trace, strategy, prune):
        constraints = {
            "once": SUBMIT_ONCE,
            "fifo": FIFO_FILL,
            "live": RESPONSE,
        }
        planned = PlannedMonitor(
            constraints,
            History.empty(V),
            assume_safety=True,
            strategy=strategy,
            prune=prune,
        )
        plain = IntegrityMonitor(
            constraints,
            History.empty(V),
            assume_safety=True,
            strategy=strategy,
            prune=prune,
        )
        for facts in trace:
            state = DatabaseState.from_facts(V, facts)
            rp = planned.append_state(state)
            rn = plain.append_state(state)
            assert dict(rp.satisfied) == dict(rn.satisfied)
            assert rp.new_violations == rn.new_violations
            assert planned.remainders() == plain.remainders()
        assert planned.violations() == plain.violations()

    @given(trace=traces, strategy=st.sampled_from(["incremental", "spare"]))
    @settings(max_examples=100, deadline=None)
    def test_cosafety_retirement_preserves_verdicts(self, trace, strategy):
        # forall x . F (Sub(x) | !Sub(x)) is valid: the remainder
        # discharges at construction and the co-safety backend retires
        # the entry — verdicts must stay identical to the full backend.
        valid = parse("forall x . F (Sub(x) | !Sub(x))")
        planned = PlannedMonitor(
            {"vac": valid}, History.empty(V),
            assume_safety=True, strategy=strategy,
        )
        assert planned.plan["vac"].backend == "progression-cosafety"
        plain = IntegrityMonitor(
            {"vac": valid}, History.empty(V), assume_safety=True,
            strategy=strategy,
        )
        for facts in trace:
            state = DatabaseState.from_facts(V, facts)
            rp = planned.append_state(state)
            rn = plain.append_state(state)
            assert dict(rp.satisfied) == dict(rn.satisfied)
            assert rp.new_violations == rn.new_violations
        assert planned.violations() == plain.violations() == {}


class TestPlannedMonitorSurface:
    def test_mixed_set_routes_past_to_pasteval(self):
        monitor = PlannedMonitor(
            {"audit": AUDIT, "once": SUBMIT_ONCE}, History.empty(V)
        )
        assert monitor.plan["audit"].backend == "pasteval"
        assert monitor.plan["once"].backend == "progression-safety"
        report = monitor.apply(Update.insert(("Fill", (7,))))
        assert report.new_violations == ("audit",)
        assert monitor.violations() == {"audit": 1}
        assert not monitor.is_satisfied("audit")
        assert monitor.is_satisfied("once")
        # Pasteval keeps no remainder; the progression entry does.
        assert set(monitor.remainders()) == {"once"}
        # One coherent stats shape across both engines.
        stats = monitor.stats()
        assert set(stats) == {"audit", "once"}
        # 2: the initial-state replay at construction plus the update.
        assert stats["audit"].past_updates == 2
        assert stats["audit"].past_memory >= 1
        assert stats["once"].past_updates == 0
        monitor.reset()
        assert monitor.stats()["audit"].past_updates == 0

    def test_planned_stats_count_fast_decisions(self):
        monitor = PlannedMonitor(
            {"once": SUBMIT_ONCE}, History.empty(V), assume_safety=True
        )
        monitor.apply(Update.insert(("Sub", (1,))))
        monitor.apply(Update.insert(("Sub", (2,))))
        stats = monitor.stats()["once"]
        assert stats.planned_fast_decisions + stats.planned_fallbacks > 0

    def test_retired_entry_unretires_on_fresh_element(self):
        valid = parse("forall x . F (Sub(x) | !Sub(x))")
        monitor = PlannedMonitor(
            {"vac": valid}, History.empty(V),
            assume_safety=True, strategy="spare",
        )
        for element in range(5):
            report = monitor.apply(Update.insert(("Sub", (element,))))
            assert dict(report.satisfied) == {"vac": True}
        stats = monitor.stats()["vac"]
        assert stats.retired_steps > 0

    def test_violations_keep_registration_order(self):
        monitor = PlannedMonitor(
            {"once": SUBMIT_ONCE, "audit": AUDIT}, History.empty(V)
        )
        monitor.apply(Update.insert(("Fill", (1,))))
        monitor.apply(Update.insert(("Sub", (1,))))
        monitor.apply(Update.insert(("Sub", (1,))))
        assert list(monitor.violations()) == ["once", "audit"]

    def test_history_tracks_both_engines(self):
        monitor = PlannedMonitor({"audit": AUDIT}, History.empty(V))
        assert monitor.now == 0
        monitor.apply(Update.insert(("Sub", (1,))))
        assert monitor.now == 1
        assert len(monitor.history) == 2
