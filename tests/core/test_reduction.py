"""Tests for the Theorem 4.1 reduction."""

import pytest

from repro.core import Anon, RelAtom, ground_domain, reduce_universal
from repro.core.reduction import decode_state, state_to_props
from repro.database import History, vocabulary
from repro.errors import SchemaError
from repro.logic import parse
from repro.logic.classify import require_universal
from repro.ptl import Prop

V = vocabulary({"Sub": 1, "Fill": 1})


def reduction_for(text, history, fold=True):
    info = require_universal(parse(text))
    return reduce_universal(history, info, fold=fold)


class TestGroundDomain:
    def test_relevant_then_anonymous(self):
        domain = ground_domain(frozenset({3, 1}), 2)
        assert domain == (1, 3, Anon(1), Anon(2))

    def test_empty_relevant_set(self):
        assert ground_domain(frozenset(), 1) == (Anon(1),)

    def test_constraint_scope_ignores_foreign_relations(self):
        from repro.core.reduction import constraint_relevant_elements
        from repro.logic.classify import require_universal

        v = vocabulary({"Sub": 1, "Audit": 1})
        h = History.from_facts(
            v, [[("Sub", (1,)), ("Audit", (9,))]]
        )
        info = require_universal(
            parse("forall x . G (Sub(x) -> X G !Sub(x))")
        )
        assert constraint_relevant_elements(h, info) == {1}
        full = reduce_universal(h, info, scope="full")
        narrow = reduce_universal(h, info, scope="constraint")
        assert narrow.assignment_count < full.assignment_count

    def test_invalid_scope(self):
        h = History.empty(V)
        info = require_universal(
            parse("forall x . G (Sub(x) -> X G !Sub(x))")
        )
        import pytest as _pytest

        with _pytest.raises(ValueError):
            reduce_universal(h, info, scope="partial")


class TestReduction:
    def test_instance_count_is_m_to_the_k(self, submit_once, fifo_fill):
        h = History.from_facts(V, [[("Sub", (1,)), ("Sub", (2,))]])
        r1 = reduction_for("forall x . G (Sub(x) -> X G !Sub(x))", h)
        assert r1.assignment_count == 3  # |{1, 2, z1}|^1
        info = require_universal(fifo_fill)
        r2 = reduce_universal(h, info)
        assert r2.assignment_count == 16  # |{1, 2, z1, z2}|^2

    def test_prefix_length_matches_history(self):
        h = History.from_facts(V, [[("Sub", (1,))], [], [("Fill", (1,))]])
        r = reduction_for("forall x . G !(Sub(x) & Fill(x))", h)
        assert len(r.prefix) == 3

    def test_prefix_states_are_fact_letters(self):
        h = History.from_facts(V, [[("Sub", (1,))]])
        r = reduction_for("forall x . G Sub(x)", h)
        assert r.prefix[0] == frozenset({Prop(RelAtom("Sub", (1,)))})

    def test_vocabulary_mismatch_rejected(self):
        h = History.from_facts(V, [[]])
        with pytest.raises(SchemaError, match="undeclared"):
            reduction_for("forall x . G !Missing(x)", h)

    def test_arity_mismatch_rejected(self):
        h = History.from_facts(V, [[]])
        with pytest.raises(SchemaError, match="arity"):
            reduction_for("forall x . G !Sub(x, x)", h)

    def test_extended_vocabulary_rejected(self):
        h = History.from_facts(V, [[]])
        with pytest.raises(SchemaError, match="extended"):
            reduction_for("forall x y . G (succ(x, y) -> !Sub(x))", h)

    def test_unbound_formula_constant_rejected(self):
        h = History.from_facts(V, [[]])
        with pytest.raises(SchemaError):
            reduction_for("forall x . G !Sub(Vip)", h)

    def test_literal_mode_is_bigger(self, submit_once):
        h = History.from_facts(V, [[("Sub", (1,))]])
        info = require_universal(submit_once)
        folded = reduce_universal(h, info, fold=True)
        literal = reduce_universal(h, info, fold=False)
        assert literal.formula_size() > folded.formula_size()

    def test_literal_prefix_contains_identity_letters(self, submit_once):
        from repro.core import EqAtom

        h = History.from_facts(V, [[("Sub", (1,))]])
        info = require_universal(submit_once)
        literal = reduce_universal(h, info, fold=False)
        assert Prop(EqAtom(1, 1)) in literal.prefix[0]


class TestDecoding:
    def test_decode_state_roundtrip(self):
        h = History.from_facts(V, [[("Sub", (1,)), ("Fill", (2,))]])
        r = reduction_for("forall x . G !(Sub(x) & Fill(x))", h)
        decoded = decode_state(r.prefix[0], V, r)
        assert decoded == h[0]

    def test_decode_ignores_non_fact_letters(self):
        h = History.from_facts(V, [[("Sub", (1,))]])
        r = reduction_for("forall x . G Sub(x)", h)
        props = r.prefix[0] | {
            Prop(RelAtom("Fill", (Anon(1),))),  # anonymous: no fact
        }
        decoded = decode_state(props, V, r)
        assert decoded == h[0]

    def test_state_to_props_folded_has_no_equalities(self):
        h = History.from_facts(V, [[("Sub", (1,))]])
        props = state_to_props(h[0], (1, Anon(1)), fold=True)
        assert all(isinstance(p.name, RelAtom) for p in props)
