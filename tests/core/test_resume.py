"""Checkpoint/resume: kill-and-restore must not change any verdict.

Lemma 4.2's whole point is that the progressed remainder is a sufficient
statistic for the history prefix, so a monitor serialized mid-stream and
restored (even in a fresh process) must produce the exact verdict stream
of the uninterrupted run.  The hypothesis sweep below pins that over
engines × strategies × prune at a random cut point, with every derived
cache cleared and a forced GC between snapshot and restore; a subprocess
test covers the genuinely-fresh-interpreter case.
"""

import gc
import json
import subprocess
import sys
from dataclasses import fields

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import IntegrityMonitor, MonitorStats, PlannedMonitor
from repro.database import (
    DatabaseState,
    History,
    monitor_from_dict,
    monitor_to_dict,
    vocabulary,
)
from repro.errors import StateError
from repro.logic import parse
from repro.ptl.caches import clear_all_caches

V = vocabulary({"Sub": 1, "Fill": 1})
SUBMIT_ONCE = parse("forall x . G (Sub(x) -> X G !Sub(x))")
NO_FILL_FIRST = parse("forall x . G !(Fill(x) & (!Sub(x) U Sub(x)))")
CONSTRAINTS = {
    "once": SUBMIT_ONCE,
    "order": NO_FILL_FIRST,
}

traces = st.lists(
    st.lists(
        st.tuples(
            st.sampled_from(["Sub", "Fill"]),
            st.tuples(st.integers(0, 2)),
        ),
        max_size=2,
    ),
    min_size=2,
    max_size=5,
)


def _states(trace):
    return [DatabaseState.from_facts(V, facts) for facts in trace]


def _run(monitor, states):
    return [
        (r.instant, r.satisfied, r.new_violations)
        for r in map(monitor.append_state, states)
    ]


class TestResumeEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        trace=traces,
        cut=st.integers(0, 5),
        engine=st.sampled_from(["reference", "bitset", "compiled"]),
        strategy=st.sampled_from(["scratch", "incremental", "spare"]),
        prune=st.booleans(),
    )
    def test_kill_and_restore_matches_uninterrupted(
        self, trace, cut, engine, strategy, prune
    ):
        cut = min(cut, len(trace))
        states = _states(trace)
        ref = IntegrityMonitor(
            CONSTRAINTS, History.empty(V),
            engine=engine, strategy=strategy, prune=prune,
        )
        live = IntegrityMonitor(
            CONSTRAINTS, History.empty(V),
            engine=engine, strategy=strategy, prune=prune,
        )
        for state in states[:cut]:
            ref.append_state(state)
            live.append_state(state)
        blob = json.dumps(monitor_to_dict(live))
        del live
        clear_all_caches()
        gc.collect()
        resumed = monitor_from_dict(json.loads(blob))
        assert _run(resumed, states[cut:]) == _run(ref, states[cut:])
        assert resumed.violations() == ref.violations()
        # The remainder IS the resumed state: hash-consing makes the
        # equality an identity.
        for name, remainder in resumed.remainders().items():
            assert remainder is ref.remainders()[name]

    @settings(max_examples=15, deadline=None)
    @given(trace=traces, cut=st.integers(0, 5))
    def test_planned_monitor_resume_covers_pasteval(self, trace, cut):
        constraints = {
            "once": SUBMIT_ONCE,
            "audit": parse("forall x . G (Fill(x) -> Y O Sub(x))"),
        }
        cut = min(cut, len(trace))
        states = _states(trace)
        ref = PlannedMonitor(constraints, History.empty(V))
        live = PlannedMonitor(constraints, History.empty(V))
        for state in states[:cut]:
            ref.append_state(state)
            live.append_state(state)
        blob = json.dumps(live.snapshot())
        del live
        clear_all_caches()
        gc.collect()
        resumed = PlannedMonitor.from_snapshot(json.loads(blob))
        assert _run(resumed, states[cut:]) == _run(ref, states[cut:])
        assert resumed.violations() == ref.violations()

    def test_fresh_interpreter_round_trip(self, tmp_path):
        monitor = IntegrityMonitor(CONSTRAINTS, History.empty(V))
        monitor.append_state(DatabaseState.from_facts(V, [("Sub", (1,))]))
        monitor.append_state(DatabaseState.from_facts(V, [("Sub", (1,))]))
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(monitor_to_dict(monitor)))
        expected = monitor.append_state(DatabaseState.empty(V))
        script = (
            "import json, sys\n"
            "from repro.database import monitor_from_dict, DatabaseState\n"
            "m = monitor_from_dict(json.load(open(sys.argv[1])))\n"
            "r = m.append_state(DatabaseState.empty(m.history.vocabulary))\n"
            "print(json.dumps([r.instant, r.satisfied, "
            "list(r.new_violations), m.violations()]))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script, str(path)],
            capture_output=True, text=True, check=True,
        )
        instant, satisfied, fresh, violations = json.loads(out.stdout)
        assert instant == expected.instant
        assert satisfied == expected.satisfied
        assert tuple(fresh) == expected.new_violations
        assert violations == monitor.violations()

    def test_restored_stats_round_trip(self):
        monitor = IntegrityMonitor(CONSTRAINTS, History.empty(V))
        monitor.append_state(DatabaseState.from_facts(V, [("Sub", (1,))]))
        before = {
            name: stats.as_dict() for name, stats in monitor.stats().items()
        }
        resumed = monitor_from_dict(monitor_to_dict(monitor))
        after = {
            name: stats.as_dict() for name, stats in resumed.stats().items()
        }
        assert after == before


class TestSnapshotValidation:
    def test_rejects_wrong_format_tag(self):
        monitor = IntegrityMonitor(CONSTRAINTS, History.empty(V))
        data = monitor_to_dict(monitor)
        data["format"] = "repro-monitor-snapshot/v0"
        with pytest.raises(StateError, match="format"):
            monitor_from_dict(data)

    def test_planned_rejects_missing_key(self):
        monitor = PlannedMonitor(CONSTRAINTS, History.empty(V))
        data = monitor.snapshot()
        del data["history"]
        with pytest.raises(StateError, match="history"):
            PlannedMonitor.from_snapshot(data)

    def test_planned_rejects_wrong_format(self):
        with pytest.raises(StateError, match="format"):
            PlannedMonitor.from_snapshot({"format": "bogus"})


class TestMonitorStatsReset:
    def test_reset_zeroes_every_field(self):
        stats = MonitorStats()
        # Poison every field, including the dict-valued session counters.
        for spec in fields(stats):
            current = getattr(stats, spec.name)
            if isinstance(current, dict):
                setattr(stats, spec.name, {"session": 7})
            elif isinstance(current, float):
                setattr(stats, spec.name, 1.5)
            else:
                setattr(stats, spec.name, 3)
        stats.reset()
        assert all(not value for value in stats.as_dict().values())

    def test_reset_restores_default_factory_fields(self):
        stats = MonitorStats()
        stats.stream_updates["alpha"] = 4
        stats.reset()
        assert stats.stream_updates == {}
        # The reset dict must be a fresh instance, not a shared default.
        other = MonitorStats()
        stats.stream_updates["beta"] = 1
        assert other.stream_updates == {}
