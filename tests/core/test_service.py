"""The streaming monitor service: shards, sessions, checkpoint/resume.

Sharding is an optimization, never a semantics change: a sharded
:class:`repro.service.MonitorService` must report exactly the verdicts
of an unsharded :class:`repro.core.plan.PlannedMonitor` (hypothesis-
pinned below, the same way planned was pinned to unplanned).  The async
front adds per-session FIFO ordering and the snapshot adds kill/resume —
both asserted directly.  Async tests drive the event loop through
``asyncio.run`` inside synchronous test functions (no pytest-asyncio in
the CI image).
"""

import asyncio
import gc
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PlannedMonitor, partition_constraints
from repro.database import DatabaseState, History, Update, vocabulary
from repro.errors import StateError
from repro.logic import parse
from repro.ptl.caches import clear_all_caches
from repro.service import SERVICE_SNAPSHOT_FORMAT, MonitorService

V = vocabulary({"Sub": 1, "Fill": 1, "Ping": 1})
CONSTRAINTS = {
    "once": parse("forall x . G (Sub(x) -> X G !Sub(x))"),
    "audit": parse("forall x . G (Fill(x) -> Y O Sub(x))"),
    "ping_once": parse("forall x . G (Ping(x) -> X G !Ping(x))"),
}

traces = st.lists(
    st.lists(
        st.tuples(
            st.sampled_from(["Sub", "Fill", "Ping"]),
            st.tuples(st.integers(0, 2)),
        ),
        max_size=2,
    ),
    min_size=1,
    max_size=5,
)


def _states(trace):
    return [DatabaseState.from_facts(V, facts) for facts in trace]


def _report_key(report):
    return (report.instant, report.satisfied, report.new_violations)


class TestPartition:
    def test_relation_sharing_merges(self):
        parts = partition_constraints(
            {
                "a": parse("forall x . G !Sub(x)"),
                "b": parse("forall x . G (Sub(x) -> X Fill(x))"),
                "c": parse("forall x . G !Ping(x)"),
            },
            3,
        )
        assert [sorted(p) for p in parts] == [["a", "b"], ["c"]]

    def test_respects_shard_bound(self):
        constraints = {
            f"c{i}": parse(f"forall x . G !P{i}(x)") for i in range(5)
        }
        parts = partition_constraints(constraints, 2)
        assert len(parts) == 2
        assert sorted(name for p in parts for name in p) == sorted(
            constraints
        )

    def test_builtins_do_not_merge(self):
        parts = partition_constraints(
            {
                "a": parse("forall x y . G !(Sub(x) & leq(x, y))"),
                "b": parse("forall x y . G !(Fill(x) & leq(x, y))"),
            },
            2,
        )
        assert len(parts) == 2

    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ValueError):
            partition_constraints(CONSTRAINTS, 0)

    def test_partition_of_everything_into_one(self):
        parts = partition_constraints(CONSTRAINTS, 1)
        assert len(parts) == 1
        assert tuple(parts[0]) == tuple(CONSTRAINTS)


class TestShardedEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(trace=traces, shards=st.integers(1, 4))
    def test_sharded_matches_unsharded(self, trace, shards):
        states = _states(trace)
        service = MonitorService(
            CONSTRAINTS, History.empty(V), shards=shards
        )
        reference = PlannedMonitor(CONSTRAINTS, History.empty(V))
        for state in states:
            got = service.apply_state(state)
            expected = reference.append_state(state)
            assert _report_key(got) == _report_key(expected)
        assert service.violations() == reference.violations()

    def test_shard_count_follows_components(self):
        service = MonitorService(CONSTRAINTS, History.empty(V), shards=8)
        # once+audit share Sub/Fill; ping_once is its own component.
        assert service.shard_count == 2

    def test_update_surface(self):
        service = MonitorService(CONSTRAINTS, History.empty(V), shards=2)
        service.apply(Update.insert(("Sub", (1,))))
        report = service.apply(Update.insert(("Sub", (1,))))
        assert not report.satisfied["once"]


class TestSessions:
    def test_stream_counters_per_session(self):
        service = MonitorService(CONSTRAINTS, History.empty(V))
        service.apply_state(DatabaseState.empty(V), session="alpha")
        service.apply_state(DatabaseState.empty(V), session="beta")
        service.apply_state(DatabaseState.empty(V), session="alpha")
        assert service.sessions() == {"alpha": 2, "beta": 1}
        assert service.service_stats.stream_updates["alpha"] == 2

    def test_interleaved_sessions_apply_in_submission_order(self):
        async def run():
            service = MonitorService(
                CONSTRAINTS, History.empty(V), shards=2, jobs=2
            )
            await service.start()
            try:
                # Two producers interleaving on one queue: global order
                # is arrival order, per-session order is submission
                # order — Sub(1) from alpha lands before alpha's
                # duplicate, with beta's updates in between.
                first = await service.submit(
                    Update.insert(("Sub", (1,))), session="alpha"
                )
                second = await service.submit(
                    Update.insert(("Ping", (9,))), session="beta"
                )
                third = await service.submit(
                    Update.insert(("Sub", (1,))), session="alpha"
                )
            finally:
                await service.stop()
            return service, first, second, third

        service, first, second, third = asyncio.run(run())
        assert first.instant == 1 and first.all_satisfied
        assert second.instant == 2
        assert not third.satisfied["once"]
        assert service.sessions() == {"alpha": 2, "beta": 1}

    def test_concurrent_producers_each_stay_fifo(self):
        async def run():
            service = MonitorService(CONSTRAINTS, History.empty(V))
            await service.start()
            instants = {"alpha": [], "beta": []}

            async def producer(name, count):
                for _ in range(count):
                    report = await service.submit_state(
                        DatabaseState.empty(V), session=name
                    )
                    instants[name].append(report.instant)

            try:
                await asyncio.gather(
                    producer("alpha", 5), producer("beta", 5)
                )
            finally:
                await service.stop()
            return service, instants

        service, instants = asyncio.run(run())
        # Each session sees strictly increasing instants (FIFO per
        # session), and all ten updates were applied exactly once.
        assert instants["alpha"] == sorted(instants["alpha"])
        assert instants["beta"] == sorted(instants["beta"])
        assert sorted(instants["alpha"] + instants["beta"]) == list(
            range(1, 11)
        )
        assert service.sessions() == {"alpha": 5, "beta": 5}

    def test_submit_requires_started_service(self):
        async def run():
            service = MonitorService(CONSTRAINTS, History.empty(V))
            with pytest.raises(RuntimeError, match="not started"):
                await service.submit_state(DatabaseState.empty(V))

        asyncio.run(run())

    def test_ingest_errors_propagate_to_submitter(self):
        async def run():
            service = MonitorService(CONSTRAINTS, History.empty(V))
            await service.start()
            try:
                bad_vocab = vocabulary({"Other": 1})
                with pytest.raises(Exception):
                    await service.submit_state(
                        DatabaseState.from_facts(bad_vocab, [("Other", (1,))])
                    )
                # The consumer survives a poisoned update.
                report = await service.submit_state(DatabaseState.empty(V))
            finally:
                await service.stop()
            return report

        report = asyncio.run(run())
        assert report.all_satisfied


class TestServiceSnapshot:
    @settings(max_examples=15, deadline=None)
    @given(trace=traces, cut=st.integers(0, 5), shards=st.integers(1, 3))
    def test_kill_and_restore_matches_uninterrupted(
        self, trace, cut, shards
    ):
        cut = min(cut, len(trace))
        states = _states(trace)
        ref = MonitorService(CONSTRAINTS, History.empty(V), shards=shards)
        live = MonitorService(CONSTRAINTS, History.empty(V), shards=shards)
        for state in states[:cut]:
            ref.apply_state(state, session="s")
            live.apply_state(state, session="s")
        blob = json.dumps(live.snapshot())
        del live
        clear_all_caches()
        gc.collect()
        resumed = MonitorService.restore(json.loads(blob))
        assert resumed.shard_count == ref.shard_count
        for state in states[cut:]:
            assert _report_key(resumed.apply_state(state)) == _report_key(
                ref.apply_state(state)
            )
        assert resumed.violations() == ref.violations()

    def test_snapshot_resumes_session_counters(self):
        service = MonitorService(CONSTRAINTS, History.empty(V))
        service.apply_state(DatabaseState.empty(V), session="alpha")
        resumed = MonitorService.restore(service.snapshot())
        resumed.apply_state(DatabaseState.empty(V), session="alpha")
        resumed.apply_state(DatabaseState.empty(V), session="beta")
        assert resumed.sessions() == {"alpha": 2, "beta": 1}

    def test_save_load_file_round_trip(self, tmp_path):
        service = MonitorService(CONSTRAINTS, History.empty(V), shards=2)
        service.apply(Update.insert(("Sub", (1,))))
        path = tmp_path / "service.json"
        service.save(path)
        loaded = MonitorService.load(path)
        assert loaded.now == service.now
        assert loaded.violations() == service.violations()
        data = json.loads(path.read_text())
        assert data["format"] == SERVICE_SNAPSHOT_FORMAT

    def test_restore_rejects_wrong_format(self):
        with pytest.raises(StateError, match="format"):
            MonitorService.restore({"format": "bogus"})

    def test_restore_rejects_missing_key(self):
        service = MonitorService(CONSTRAINTS, History.empty(V))
        data = service.snapshot()
        del data["shards"]
        with pytest.raises(StateError, match="shards"):
            MonitorService.restore(data)
