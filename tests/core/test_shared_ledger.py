"""Compiled-engine monitor (shared obligation ledger) equivalence.

``engine="compiled"`` must be observationally identical to the reference
engines: same per-instant verdicts, same violation instants, and
pointer-identical remainders (all three engines intern through
:mod:`repro.ptl.formulas`).  The ledger's ``shared_obligations``/``fanout``
counters must balance, and progression totals must stay comparable with
unshared runs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import IntegrityMonitor
from repro.core.monitor import MonitorStats
from repro.core.triggers import Trigger, TriggerManager
from repro.database import DatabaseState, History, vocabulary
from repro.logic import parse
from repro.ptl.progression import progress_cache_clear, progress_cache_info

V = vocabulary({"Sub": 1, "Fill": 1})
SUBMIT_ONCE = parse("forall x . G (Sub(x) -> X G !Sub(x))")
FIFO_FILL = parse(
    "forall x y . G !(x != y & Sub(x) & ((!Fill(x)) U "
    "(Sub(y) & ((!Fill(x)) U (Fill(y) & !Fill(x))))))"
)
CONSTRAINTS = {"once": SUBMIT_ONCE, "fifo": FIFO_FILL}

traces = st.lists(
    st.lists(
        st.tuples(
            st.sampled_from(["Sub", "Fill"]),
            st.tuples(st.integers(0, 2)),
        ),
        max_size=2,
    ),
    min_size=1,
    max_size=4,
)


def monitor_with(constraints, **kwargs):
    return IntegrityMonitor(constraints, History.empty(V), **kwargs)


def replay(monitor, trace):
    return [
        monitor.append_state(DatabaseState.from_facts(V, facts))
        for facts in trace
    ]


class TestCompiledEngineEquivalence:
    @given(
        trace=traces,
        strategy=st.sampled_from(["scratch", "incremental", "spare"]),
        prune=st.booleans(),
    )
    @settings(max_examples=150, deadline=None)
    def test_compiled_matches_bitset(self, trace, strategy, prune):
        compiled = monitor_with(
            CONSTRAINTS, engine="compiled", strategy=strategy, prune=prune
        )
        bitset = monitor_with(
            CONSTRAINTS, engine="bitset", strategy=strategy, prune=prune
        )
        for rc, rb in zip(replay(compiled, trace), replay(bitset, trace)):
            assert dict(rc.satisfied) == dict(rb.satisfied)
            assert rc.new_violations == rb.new_violations
        assert compiled.violations() == bitset.violations()
        cr, br = compiled.remainders(), bitset.remainders()
        assert all(cr[name] is br[name] for name in CONSTRAINTS)

    @given(trace=traces)
    @settings(max_examples=25, deadline=None)
    def test_compiled_matches_reference_engine(self, trace):
        compiled = monitor_with(CONSTRAINTS, engine="compiled")
        reference = monitor_with(CONSTRAINTS, engine="reference")
        for rc, rr in zip(
            replay(compiled, trace), replay(reference, trace)
        ):
            assert rc.new_violations == rr.new_violations
        assert compiled.remainders() == reference.remainders()

    @given(trace=traces)
    @settings(max_examples=50, deadline=None)
    def test_progression_totals_match_unshared(self, trace):
        # Followers in a shared group still count their progression, so
        # totals are comparable across engines.
        compiled = monitor_with(CONSTRAINTS, engine="compiled", prune=False)
        bitset = monitor_with(CONSTRAINTS, engine="bitset", prune=False)
        replay(compiled, trace)
        replay(bitset, trace)
        total = lambda m, f: sum(  # noqa: E731
            getattr(s, f) for s in m.stats().values()
        )
        assert total(compiled, "progressions") == total(
            bitset, "progressions"
        )


class TestLedgerCounters:
    def shared_run(self, **kwargs):
        # Three copies of the same constraint: after the initial reground
        # their remainders coincide, so non-reground instants form one
        # ledger group of three.
        m = monitor_with(
            {"a": SUBMIT_ONCE, "b": SUBMIT_ONCE, "c": SUBMIT_ONCE},
            engine="compiled",
            prune=False,
            **kwargs,
        )
        replay(
            m,
            [
                [("Sub", (1,))],
                [("Sub", (1,)), ("Fill", (1,))],
                [("Sub", (1,)), ("Fill", (2,))],
            ],
        )
        return m

    def test_fanout_balances_shared_obligations(self):
        stats = self.shared_run().stats()
        shared = sum(s.shared_obligations for s in stats.values())
        fanout = sum(s.fanout for s in stats.values())
        assert shared == fanout
        assert shared > 0

    def test_reference_engines_never_share(self):
        m = monitor_with(CONSTRAINTS, engine="bitset")
        replay(m, [[("Sub", (1,))], [("Fill", (1,))]])
        for stats in m.stats().values():
            assert stats.shared_obligations == 0
            assert stats.fanout == 0

    def test_counters_survive_the_dict_round_trip(self):
        stats = self.shared_run().stats()
        for s in stats.values():
            data = s.as_dict()
            assert "shared_obligations" in data
            assert "fanout" in data
            assert MonitorStats.from_dict(data) == s

    def test_from_dict_tolerates_unknown_keys(self):
        data = MonitorStats(progressions=3).as_dict()
        data["future_counter"] = 7
        restored = MonitorStats.from_dict(data)
        assert restored.progressions == 3
        assert not hasattr(restored, "future_counter")


class TestKernelCounters:
    """The compiled engine's counters are kept apart from the reference
    memo's, and the monitor exposes its kernel's per-rule split."""

    @given(trace=traces)
    @settings(max_examples=50, deadline=None)
    def test_compiled_run_leaves_reference_lru_cold(self, trace):
        # Regression (cross-engine cache isolation): the PR 6 kernel
        # delegated non-conjunction misses to the reference `progress`,
        # polluting — and evicting from — the LRU the bitset/reference
        # engines rely on.  Native rules must leave it untouched.
        progress_cache_clear()
        monitor = monitor_with(CONSTRAINTS, engine="compiled", lint="off")
        replay(monitor, trace)
        info = progress_cache_info()
        assert info.hits == 0
        assert info.misses == 0
        assert info.currsize == 0

    def test_compiled_counts_row_hits_not_memo_hits(self):
        monitor = monitor_with(CONSTRAINTS, engine="compiled")
        replay(
            monitor,
            [[("Sub", (1,))], [("Fill", (1,))], [], []],
        )
        stats = monitor.stats()
        assert sum(s.kernel_row_hits for s in stats.values()) > 0
        assert all(s.progress_cache_hits == 0 for s in stats.values())
        assert "kernel_row_hits" in next(iter(stats.values())).as_dict()

    def test_reference_engines_count_memo_hits_not_row_hits(self):
        monitor = monitor_with(CONSTRAINTS, engine="bitset")
        replay(monitor, [[("Sub", (1,))], [], []])
        for s in monitor.stats().values():
            assert s.kernel_row_hits == 0

    def test_progression_kernel_info_exposure(self):
        compiled = monitor_with(CONSTRAINTS, engine="compiled")
        replay(compiled, [[("Sub", (1,))], [("Fill", (1,))]])
        info = compiled.progression_kernel_info()
        assert info is not None
        assert info.reference_delegations == 0
        assert info.hits + info.misses > 0
        assert sum(info.misses_by_rule.values()) == info.misses
        assert monitor_with(
            CONSTRAINTS, engine="bitset"
        ).progression_kernel_info() is None


class TestEngineSelection:
    def test_bad_engine_rejected(self):
        try:
            monitor_with(CONSTRAINTS, engine="vectorized")
        except ValueError as error:
            assert "engine" in str(error)
        else:
            raise AssertionError("bad engine must be rejected")

    def test_compiled_trigger_manager_matches_bitset(self):
        trace = [
            [("Sub", (1,))],
            [("Sub", (1,))],
            [("Fill", (1,))],
            [("Fill", (1,))],
        ]
        logs = {}
        for engine in ("compiled", "bitset", "reference"):
            manager = TriggerManager(
                [
                    Trigger("resub", parse("F (Sub(x) & X F Sub(x))")),
                    Trigger("refill", parse("F (Fill(x) & X F Fill(x))")),
                ],
                engine=engine,
                lint="off",
            )
            history = History.empty(V)
            for facts in trace:
                history = history.extended(
                    DatabaseState.from_facts(V, facts)
                )
                manager.check(history)
            logs[engine] = manager.log
        assert logs["compiled"] == logs["bitset"] == logs["reference"]
        assert logs["compiled"]  # the duplicate submission fires

    def test_trigger_manager_rejects_bad_engine(self):
        try:
            TriggerManager([], engine="vectorized")
        except ValueError as error:
            assert "engine" in str(error)
        else:
            raise AssertionError("bad engine must be rejected")
