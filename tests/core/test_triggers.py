"""Tests for temporal triggers (duality with constraint satisfaction)."""

import pytest

from repro.core import (
    Trigger,
    TriggerManager,
    candidate_substitutions,
    fires,
    firings,
    potentially_satisfied,
)
from repro.database import History, vocabulary
from repro.errors import ClassificationError
from repro.logic import not_, parse, var
from repro.logic.transform import nnf

V = vocabulary({"Sub": 1, "Fill": 1})

RESUBMIT = parse("F (Sub(x) & X F Sub(x))")


def history(*facts_per_state):
    return History.from_facts(V, list(facts_per_state))


class TestFires:
    def test_fires_on_duplicate(self):
        trigger = Trigger("resub", RESUBMIT)
        h = history([("Sub", (1,))], [("Sub", (1,))])
        assert fires(trigger, h, {var("x"): 1})
        assert not fires(trigger, h, {var("x"): 2})

    def test_no_firing_while_future_open(self):
        trigger = Trigger("resub", RESUBMIT)
        h = history([("Sub", (1,))])
        # A second submission may still never happen.
        assert not fires(trigger, h, {var("x"): 1})

    def test_missing_substitution_rejected(self):
        trigger = Trigger("resub", RESUBMIT)
        with pytest.raises(ClassificationError, match="missing"):
            fires(trigger, history([]), {})

    def test_duality_with_constraint(self):
        """fires(C, theta)  iff  not potentially_satisfied(!C theta)."""
        trigger = Trigger("resub", RESUBMIT)
        h = history([("Sub", (1,))], [("Sub", (1,))])
        # Build !C[x := 1] by hand with an auxiliary constant.
        from repro.core.triggers import _augment_history, _instantiate

        inst, bindings = _instantiate(RESUBMIT, {var("x"): 1})
        negated = nnf(not_(inst))
        augmented = _augment_history(h, bindings)
        assert fires(trigger, h, {var("x"): 1}) == (
            not potentially_satisfied(negated, augmented)
        )


class TestEnumeration:
    def test_candidates_cover_relevant_and_fresh(self):
        trigger = Trigger("resub", RESUBMIT)
        h = history([("Sub", (1,)), ("Sub", (5,))])
        values = {
            subst[var("x")]
            for subst in candidate_substitutions(trigger, h)
        }
        assert {1, 5} <= values
        assert len(values) == 3  # plus one fresh representative

    def test_without_fresh(self):
        trigger = Trigger("resub", RESUBMIT)
        h = history([("Sub", (1,))])
        values = list(
            candidate_substitutions(trigger, h, include_fresh=False)
        )
        assert len(values) == 1

    def test_firings_report(self):
        trigger = Trigger("resub", RESUBMIT)
        h = history([("Sub", (1,))], [("Sub", (1,)), ("Sub", (2,))])
        found = firings(trigger, h)
        assert len(found) == 1
        assert found[0].values() == {"x": 1}
        assert found[0].instant == 1


class TestManager:
    def test_deduplicates_firings(self):
        trigger = Trigger("resub", RESUBMIT)
        manager = TriggerManager([trigger])
        h2 = history([("Sub", (1,))], [("Sub", (1,))])
        assert len(manager.check(h2)) == 1
        h3 = history([("Sub", (1,))], [("Sub", (1,))], [])
        assert manager.check(h3) == []  # already fired
        assert len(manager.log) == 1

    def test_action_callback_invoked(self):
        calls = []
        trigger = Trigger(
            "resub",
            RESUBMIT,
            action=lambda hist, values: calls.append(values),
        )
        manager = TriggerManager([trigger])
        manager.check(history([("Sub", (2,))], [("Sub", (2,))]))
        assert calls == [{"x": 2}]

    def test_multiple_triggers(self):
        double_fill = Trigger(
            "dfill", parse("F (Fill(x) & X F Fill(x))")
        )
        resub = Trigger("resub", RESUBMIT)
        manager = TriggerManager([resub, double_fill])
        h = history(
            [("Sub", (1,))],
            [("Sub", (1,)), ("Fill", (3,))],
            [("Fill", (3,))],
        )
        fired = manager.check(h)
        assert {f.trigger for f in fired} == {"resub", "dfill"}
