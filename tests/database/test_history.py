"""Tests for finite-time temporal databases (histories)."""

import pytest

from repro.database import DatabaseState, History, Update, vocabulary
from repro.errors import SchemaError, StateError

V = vocabulary({"p": 1, "edge": 2}, constants=["c"])
VPLAIN = vocabulary({"p": 1})


class TestConstruction:
    def test_from_facts(self):
        h = History.from_facts(VPLAIN, [[("p", (1,))], []])
        assert len(h) == 2
        assert h[0].holds("p", (1,))
        assert h.now == 1

    def test_empty_history_rejected(self):
        with pytest.raises(StateError):
            History(vocabulary=VPLAIN, states=())

    def test_constants_must_be_bound(self):
        with pytest.raises(SchemaError, match="without interpretation"):
            History.from_facts(V, [[]])

    def test_undeclared_constant_rejected(self):
        with pytest.raises(SchemaError, match="undeclared"):
            History.from_facts(VPLAIN, [[]], {"nope": 1})

    def test_constant_lookup(self):
        h = History.from_facts(V, [[]], {"c": 7})
        assert h.constant("c") == 7

    def test_unbound_constant_lookup(self):
        h = History.from_facts(VPLAIN, [[]])
        with pytest.raises(SchemaError):
            h.constant("c")


class TestGrowth:
    def test_extended(self):
        h = History.empty(VPLAIN)
        h2 = h.extended(DatabaseState.from_facts(VPLAIN, [("p", (1,))]))
        assert len(h) == 1 and len(h2) == 2
        assert h2.current.holds("p", (1,))

    def test_updated_applies_delta(self):
        h = History.from_facts(VPLAIN, [[("p", (1,))]])
        h2 = h.updated(Update.insert(("p", (2,))))
        assert h2.current.holds("p", (1,))  # persists
        assert h2.current.holds("p", (2,))

    def test_truncated(self):
        h = History.from_facts(VPLAIN, [[("p", (1,))], [], []])
        assert len(h.truncated(2)) == 2

    def test_truncate_bounds(self):
        h = History.empty(VPLAIN)
        with pytest.raises(StateError):
            h.truncated(0)
        with pytest.raises(StateError):
            h.truncated(5)


class TestRelevantElements:
    def test_includes_all_states_and_constants(self):
        h = History.from_facts(
            V, [[("p", (3,))], [("edge", (5, 6))]], {"c": 9}
        )
        assert h.relevant_elements() == {3, 5, 6, 9}

    def test_active_domain_excludes_constants(self):
        h = History.from_facts(V, [[("p", (3,))]], {"c": 9})
        assert h.active_domain() == {3}

    def test_fact_count(self):
        h = History.from_facts(
            VPLAIN, [[("p", (1,)), ("p", (2,))], [("p", (1,))]]
        )
        assert h.fact_count() == 3


class TestRestrictionRenaming:
    def test_restrict_requires_constants(self):
        h = History.from_facts(V, [[("p", (3,))]], {"c": 9})
        with pytest.raises(StateError, match="constant"):
            h.restrict(frozenset({3}))

    def test_restrict(self):
        h = History.from_facts(
            V, [[("p", (3,)), ("edge", (3, 4))]], {"c": 9}
        )
        r = h.restrict(frozenset({3, 9}))
        assert r[0].holds("p", (3,))
        assert not r[0].holds("edge", (3, 4))

    def test_rename_remaps_constants_too(self):
        h = History.from_facts(V, [[("p", (3,))]], {"c": 3})
        r = h.rename({3: 30})
        assert r.constant("c") == 30
        assert r[0].holds("p", (30,))
