"""Tests for lasso databases, relevant-domain machinery, and serialization."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.database import (
    History,
    LassoDatabase,
    canonical_form,
    fresh_elements,
    history_from_dict,
    history_to_dict,
    irrelevant_elements,
    lasso_from_dict,
    lasso_to_dict,
    relevant_elements,
    vocabulary,
)
from repro.errors import StateError

V = vocabulary({"p": 1, "edge": 2})


class TestLassoDatabase:
    def test_state_at_wraps(self):
        h = History.from_facts(V, [[("p", (1,))], [("p", (2,))]])
        db = LassoDatabase(
            vocabulary=V, stem=h.states[:1], loop=h.states[1:]
        )
        assert db.state_at(0).holds("p", (1,))
        assert db.state_at(1).holds("p", (2,))
        assert db.state_at(7).holds("p", (2,))

    def test_empty_loop_rejected(self):
        with pytest.raises(StateError):
            LassoDatabase(vocabulary=V, stem=(), loop=())

    def test_fold_and_successor(self):
        h = History.from_facts(V, [[], [], []])
        db = LassoDatabase(vocabulary=V, stem=h.states[:1], loop=h.states[1:])
        assert db.fold(0) == 0
        assert db.fold(5) in (1, 2)
        assert db.successor_position(2) == 1  # wraps into the loop

    def test_prefix_is_history(self):
        h = History.from_facts(V, [[("p", (1,))]])
        db = LassoDatabase.constant_extension(h)
        prefix = db.prefix(4)
        assert len(prefix) == 4
        assert all(s.holds("p", (1,)) for s in prefix)

    def test_relevant_elements(self):
        h = History.from_facts(V, [[("edge", (1, 5))]])
        db = LassoDatabase.constant_extension(h)
        assert db.relevant_elements() == {1, 5}


class TestRelevant:
    def test_fresh_elements_disjoint_from_relevant(self):
        h = History.from_facts(V, [[("p", (0,)), ("p", (2,))]])
        fresh = fresh_elements(h, 3)
        assert len(fresh) == 3
        assert not (set(fresh) & h.relevant_elements())
        assert fresh == (1, 3, 4)

    def test_irrelevant_elements(self):
        h = History.from_facts(V, [[("p", (1,))]])
        assert list(irrelevant_elements(h, 4)) == [0, 2, 3]

    def test_canonical_form_compacts(self):
        h = History.from_facts(V, [[("edge", (10, 30))], [("p", (20,))]])
        c = canonical_form(h)
        assert c.relevant_elements() == {0, 1, 2}
        assert c[0].holds("edge", (0, 2))
        assert c[1].holds("p", (1,))

    def test_canonical_form_idempotent(self):
        h = History.from_facts(V, [[("p", (3,))]])
        assert canonical_form(canonical_form(h)) == canonical_form(h)

    def test_relevant_elements_function(self):
        h = History.from_facts(V, [[("p", (4,))]])
        assert relevant_elements(h) == {4}


class TestSerialization:
    def test_history_roundtrip(self):
        h = History.from_facts(
            vocabulary({"p": 1}, constants=["c"]),
            [[("p", (1,))], []],
            {"c": 5},
        )
        assert history_from_dict(history_to_dict(h)) == h

    def test_dict_is_json_compatible(self):
        h = History.from_facts(V, [[("edge", (1, 2))]])
        text = json.dumps(history_to_dict(h))
        assert history_from_dict(json.loads(text)) == h

    def test_lasso_roundtrip(self):
        h = History.from_facts(V, [[("p", (1,))], [("p", (2,))]])
        db = LassoDatabase(vocabulary=V, stem=h.states[:1], loop=h.states[1:])
        back = lasso_from_dict(lasso_to_dict(db))
        assert back.stem == db.stem and back.loop == db.loop

    def test_empty_serialized_history_rejected(self):
        with pytest.raises(StateError):
            history_from_dict(
                {"vocabulary": {"predicates": {}}, "states": []}
            )

    @given(
        data=st.lists(
            st.lists(
                st.tuples(
                    st.sampled_from(["p"]),
                    st.tuples(st.integers(0, 5)),
                ),
                max_size=4,
            ),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_random_roundtrip(self, data):
        h = History.from_facts(vocabulary({"p": 1}), data)
        assert history_from_dict(history_to_dict(h)) == h

    def test_file_roundtrip(self, tmp_path):
        from repro.database import dump_history, load_history

        h = History.from_facts(V, [[("p", (1,))]])
        path = tmp_path / "history.json"
        dump_history(h, str(path))
        assert load_history(str(path)) == h
