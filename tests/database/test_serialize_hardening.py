"""Serialize hardening: malformed payloads raise repro errors that name
the offending relation/state, never bare KeyError/TypeError tracebacks.

The durability sweep also added the PTL codec and monitor snapshot
formats; the decoder half is validated here (the semantic round-trip
lives in ``tests/core/test_resume.py``).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.database import vocabulary
from repro.database.serialize import (
    history_from_dict,
    history_to_dict,
    ptl_from_jsonable,
    ptl_to_jsonable,
    state_from_dict,
    vocabulary_from_dict,
)
from repro.errors import StateError
from repro.ptl.formulas import (
    PAlways,
    PAnd,
    PEventually,
    PNext,
    PNot,
    POr,
    Prop,
    PTLFalse,
    PTLTrue,
    PUntil,
)

V = vocabulary({"Sub": 1, "Pair": 2})


class TestStateValidation:
    def test_unknown_relation_names_offender(self):
        with pytest.raises(StateError, match="'Bogus'"):
            state_from_dict(V, {"Bogus": [[1]]})

    def test_unknown_relation_lists_declared(self):
        with pytest.raises(StateError, match="declared relations"):
            state_from_dict(V, {"Bogus": [[1]]})

    def test_arity_mismatch_names_relation(self):
        with pytest.raises(StateError, match="'Pair'"):
            state_from_dict(V, {"Pair": [[1]]})

    def test_non_integer_element_rejected(self):
        with pytest.raises(StateError, match="non-integer"):
            state_from_dict(V, {"Sub": [["one"]]})

    def test_bool_element_rejected(self):
        # bool is an int subclass; a serialized element must still be a
        # plain integer.
        with pytest.raises(StateError, match="non-integer"):
            state_from_dict(V, {"Sub": [[True]]})

    def test_rows_must_be_a_list(self):
        with pytest.raises(StateError, match="'Sub'"):
            state_from_dict(V, {"Sub": 3})

    def test_where_context_is_propagated(self):
        with pytest.raises(StateError, match="state 1"):
            history_from_dict(
                {
                    "vocabulary": {"predicates": {"Sub": 1}},
                    "states": [{"Sub": [[1]]}, {"Bogus": [[2]]}],
                }
            )

    def test_missing_vocabulary_key(self):
        with pytest.raises(StateError, match="vocabulary"):
            history_from_dict({"states": []})

    def test_vocabulary_arity_must_be_nonnegative_int(self):
        with pytest.raises(StateError):
            vocabulary_from_dict({"predicates": {"Sub": -1}})
        with pytest.raises(StateError):
            vocabulary_from_dict({"predicates": {"Sub": "one"}})

    def test_valid_history_still_round_trips(self):
        from repro.database import History

        history = History.from_facts(
            V, [[("Sub", (1,)), ("Pair", (1, 2))], []]
        )
        assert history_from_dict(history_to_dict(history)) == history


props = st.sampled_from(
    [Prop("a"), Prop("b"), PTLTrue(), PTLFalse()]
)
ptl_formulas = st.recursive(
    props,
    lambda children: st.one_of(
        st.builds(PNot, children),
        st.builds(PNext, children),
        st.builds(PAlways, children),
        st.builds(PEventually, children),
        st.builds(lambda a, b: PAnd((a, b)), children, children),
        st.builds(lambda a, b: POr((a, b)), children, children),
        st.builds(PUntil, children, children),
    ),
    max_leaves=8,
)


class TestPTLCodec:
    @settings(max_examples=50, deadline=None)
    @given(formula=ptl_formulas)
    def test_round_trip_is_identity(self, formula):
        decoded = ptl_from_jsonable(ptl_to_jsonable(formula))
        # Interning makes structural equality pointer identity.
        assert decoded is formula

    def test_unknown_tag_rejected(self):
        with pytest.raises(StateError, match="bogus"):
            ptl_from_jsonable(["bogus"])

    def test_malformed_node_rejected(self):
        with pytest.raises(StateError):
            ptl_from_jsonable(["and"])
        with pytest.raises(StateError):
            ptl_from_jsonable(42)
