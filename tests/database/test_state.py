"""Tests for database states (finite relations, closed world)."""

import pytest

from repro.database import DatabaseState, vocabulary
from repro.errors import SchemaError

V = vocabulary({"p": 1, "edge": 2})


def state(*facts):
    return DatabaseState.from_facts(V, facts)


class TestBasics:
    def test_closed_world(self):
        s = state(("p", (1,)))
        assert s.holds("p", (1,))
        assert not s.holds("p", (2,))

    def test_empty_state(self):
        s = DatabaseState.empty(V)
        assert s.fact_count() == 0
        assert s.active_domain() == frozenset()

    def test_facts_sorted_iteration(self):
        s = state(("edge", (2, 1)), ("p", (3,)), ("edge", (0, 1)))
        assert list(s.facts()) == [
            ("edge", (0, 1)),
            ("edge", (2, 1)),
            ("p", (3,)),
        ]

    def test_active_domain(self):
        s = state(("edge", (2, 7)), ("p", (3,)))
        assert s.active_domain() == {2, 3, 7}

    def test_schema_enforced_on_construction(self):
        with pytest.raises(SchemaError):
            state(("p", (1, 2)))

    def test_schema_enforced_on_holds(self):
        with pytest.raises(SchemaError):
            state().holds("q", (1,))

    def test_relation_of_unknown_predicate(self):
        with pytest.raises(SchemaError):
            state().relation("nope")


class TestUpdatesImmutability:
    def test_with_facts_returns_new(self):
        s = state(("p", (1,)))
        s2 = s.with_facts([("p", (2,))])
        assert s2.holds("p", (2,)) and not s.holds("p", (2,))

    def test_without_facts(self):
        s = state(("p", (1,)), ("p", (2,)))
        s2 = s.without_facts([("p", (1,))])
        assert not s2.holds("p", (1,)) and s2.holds("p", (2,))

    def test_without_missing_fact_ignored(self):
        s = state(("p", (1,)))
        assert s.without_facts([("p", (9,))]) == s


class TestEqualityAndHash:
    def test_structural_equality(self):
        assert state(("p", (1,))) == state(("p", (1,)))
        assert state(("p", (1,))) != state(("p", (2,)))

    def test_hashable(self):
        assert len({state(("p", (1,))), state(("p", (1,)))}) == 1

    def test_empty_relations_normalized_away(self):
        s = DatabaseState(vocabulary=V, relations={"p": frozenset()})
        assert s == DatabaseState.empty(V)


class TestRestrictionAndRenaming:
    def test_restrict_keeps_inside_tuples(self):
        s = state(("edge", (1, 2)), ("edge", (1, 9)))
        r = s.restrict(frozenset({1, 2}))
        assert r.holds("edge", (1, 2)) and not r.holds("edge", (1, 9))

    def test_rename(self):
        s = state(("edge", (1, 2)))
        r = s.rename({1: 10, 2: 20})
        assert r.holds("edge", (10, 20))

    def test_rename_must_be_injective(self):
        with pytest.raises(ValueError):
            state(("p", (1,))).rename({1: 5, 2: 5})
