"""Tests for updates, update logs, and state diffs."""

import pytest

from repro.database import (
    DatabaseState,
    Update,
    UpdateLog,
    diff_states,
    vocabulary,
)
from repro.errors import StateError

V = vocabulary({"p": 1})


def state(*facts):
    return DatabaseState.from_facts(V, facts)


class TestUpdate:
    def test_insert_delete_apply(self):
        s = state(("p", (1,)))
        u = Update(
            inserts=frozenset({("p", (2,))}),
            deletes=frozenset({("p", (1,))}),
        )
        s2 = u.apply(s)
        assert s2.holds("p", (2,)) and not s2.holds("p", (1,))

    def test_conflicting_update_rejected(self):
        with pytest.raises(StateError, match="inserts and deletes"):
            Update(
                inserts=frozenset({("p", (1,))}),
                deletes=frozenset({("p", (1,))}),
            )

    def test_noop(self):
        assert Update.noop().is_noop()
        s = state(("p", (1,)))
        assert Update.noop().apply(s) == s

    def test_touched_elements(self):
        u = Update.insert(("p", (3,))) | Update.delete(("p", (9,)))
        assert u.touched_elements() == {3, 9}

    def test_merge_operator(self):
        u = Update.insert(("p", (1,))) | Update.insert(("p", (2,)))
        assert len(u.inserts) == 2

    def test_merge_conflict_raises(self):
        with pytest.raises(StateError):
            Update.insert(("p", (1,))) | Update.delete(("p", (1,)))


class TestUpdateLog:
    def test_replay(self):
        log = UpdateLog(initial=state())
        log.append(Update.insert(("p", (1,))))
        log.append(Update.insert(("p", (2,))))
        log.append(Update.delete(("p", (1,))))
        states = log.replay()
        assert len(states) == 4
        assert states[-1].holds("p", (2,))
        assert not states[-1].holds("p", (1,))
        assert len(log) == 3


class TestDiff:
    def test_diff_roundtrip(self):
        a = state(("p", (1,)), ("p", (2,)))
        b = state(("p", (2,)), ("p", (3,)))
        u = diff_states(a, b)
        assert u.apply(a) == b

    def test_diff_of_equal_states_is_noop(self):
        a = state(("p", (1,)))
        assert diff_states(a, a).is_noop()
