"""Tests for updates, update logs, and state diffs."""

import pytest

from repro.analysis import UpdateDependencyIndex
from repro.database import (
    DatabaseState,
    Update,
    UpdateLog,
    diff_states,
    vocabulary,
)
from repro.errors import SchemaError, StateError
from repro.logic.parser import parse

V = vocabulary({"p": 1})


def state(*facts):
    return DatabaseState.from_facts(V, facts)


class TestUpdate:
    def test_insert_delete_apply(self):
        s = state(("p", (1,)))
        u = Update(
            inserts=frozenset({("p", (2,))}),
            deletes=frozenset({("p", (1,))}),
        )
        s2 = u.apply(s)
        assert s2.holds("p", (2,)) and not s2.holds("p", (1,))

    def test_conflicting_update_rejected(self):
        with pytest.raises(StateError, match="inserts and deletes"):
            Update(
                inserts=frozenset({("p", (1,))}),
                deletes=frozenset({("p", (1,))}),
            )

    def test_noop(self):
        assert Update.noop().is_noop()
        s = state(("p", (1,)))
        assert Update.noop().apply(s) == s

    def test_touched_elements(self):
        u = Update.insert(("p", (3,))) | Update.delete(("p", (9,)))
        assert u.touched_elements() == {3, 9}

    def test_merge_operator(self):
        u = Update.insert(("p", (1,))) | Update.insert(("p", (2,)))
        assert len(u.inserts) == 2

    def test_merge_conflict_raises(self):
        with pytest.raises(StateError):
            Update.insert(("p", (1,))) | Update.delete(("p", (1,)))


class TestUpdateLog:
    def test_replay(self):
        log = UpdateLog(initial=state())
        log.append(Update.insert(("p", (1,))))
        log.append(Update.insert(("p", (2,))))
        log.append(Update.delete(("p", (1,))))
        states = log.replay()
        assert len(states) == 4
        assert states[-1].holds("p", (2,))
        assert not states[-1].holds("p", (1,))
        assert len(log) == 3


class TestDiff:
    def test_diff_roundtrip(self):
        a = state(("p", (1,)), ("p", (2,)))
        b = state(("p", (2,)), ("p", (3,)))
        u = diff_states(a, b)
        assert u.apply(a) == b

    def test_diff_of_equal_states_is_noop(self):
        a = state(("p", (1,)))
        assert diff_states(a, a).is_noop()


class TestDeltaEdgeCases:
    """The deltas the pruning index must classify correctly."""

    def test_noop_update_touches_nothing(self):
        u = Update.noop()
        assert u.touched_elements() == frozenset()
        index = UpdateDependencyIndex({"c": parse("forall x . G p(x)")})
        assert index.touched_by_update(u) == frozenset()
        assert index.affected_by_update(u) == frozenset()

    def test_diff_ignores_redundant_insert(self):
        # Re-inserting a present fact while deleting another one: the
        # diff of the resulting transition must only contain the real
        # change, so the dependence index sees a pure delete.
        a = state(("p", (1,)), ("p", (2,)))
        u = Update.insert(("p", (1,))) | Update.delete(("p", (2,)))
        b = u.apply(a)
        delta = diff_states(a, b)
        assert delta.inserts == frozenset()
        assert delta.deletes == {("p", (2,))}

    def test_duplicate_insert_then_delete_across_instants(self):
        # Inserting a fact that is already there is a semantic no-op;
        # the later delete is the only observable transition.
        log = UpdateLog(initial=state(("p", (1,))))
        log.append(Update.insert(("p", (1,))))
        log.append(Update.delete(("p", (1,))))
        states = log.replay()
        assert states[0] == states[1]
        assert diff_states(states[0], states[1]).is_noop()
        assert not states[2].holds("p", (1,))

    def test_insert_and_delete_same_fact_one_instant_rejected(self):
        # Within a single instant there is no ordering, so
        # insert-then-delete of one fact is a conflict, not a no-op.
        with pytest.raises(StateError, match="inserts and deletes"):
            Update(
                inserts=frozenset({("p", (1,))}),
                deletes=frozenset({("p", (1,))}),
            )

    def test_update_on_relation_outside_vocabulary(self):
        # The update itself is schema-agnostic; applying it to a state
        # over a vocabulary without the relation fails loudly, and the
        # dependence index classifies it as touching no constraint.
        u = Update.insert(("q", (1,)))
        with pytest.raises(SchemaError, match="q"):
            u.apply(state(("p", (1,))))
        index = UpdateDependencyIndex({"c": parse("forall x . G p(x)")})
        assert index.touched_by_update(u) == frozenset()
        assert index.affected_by_update(u) == frozenset()
