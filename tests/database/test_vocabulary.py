"""Tests for vocabularies and schema validation."""

import pytest

from repro.database import BUILTIN_PREDICATES, Vocabulary, vocabulary
from repro.errors import SchemaError
from repro.logic import parse


class TestConstruction:
    def test_basic(self):
        v = vocabulary({"Sub": 1, "edge": 2}, constants=["vip"])
        assert v.arity("Sub") == 1
        assert v.arity("edge") == 2
        assert "vip" in v.constant_symbols

    def test_zero_arity_rejected(self):
        with pytest.raises(SchemaError, match="arity"):
            vocabulary({"p": 0})

    def test_builtin_names_reserved(self):
        for name in BUILTIN_PREDICATES:
            with pytest.raises(SchemaError, match="reserved"):
                vocabulary({name: 2})

    def test_unknown_predicate(self):
        v = vocabulary({"p": 1})
        with pytest.raises(SchemaError, match="unknown"):
            v.arity("q")


class TestHashability:
    def test_equal_vocabularies_hash_equal(self):
        a = vocabulary({"Sub": 1, "edge": 2}, constants=["vip"])
        b = vocabulary({"edge": 2, "Sub": 1}, constants=["vip"])
        assert a == b
        assert hash(a) == hash(b)

    def test_usable_as_dict_key(self):
        a = vocabulary({"Sub": 1})
        b = vocabulary({"Sub": 1})
        assert {a: "report"}[b] == "report"

    def test_distinct_vocabularies_differ(self):
        a = vocabulary({"Sub": 1})
        b = vocabulary({"Sub": 1}, constants=["vip"])
        assert a != b

    def test_hash_survives_pickle(self):
        import pickle

        a = vocabulary({"Sub": 1, "edge": 2}, constants=["vip"])
        copy = pickle.loads(pickle.dumps(a))
        assert copy == a
        assert hash(copy) == hash(a)


class TestFactChecking:
    def test_valid_fact(self):
        vocabulary({"p": 2}).check_fact("p", (0, 5))

    def test_wrong_arity(self):
        with pytest.raises(SchemaError, match="arity"):
            vocabulary({"p": 2}).check_fact("p", (1,))

    def test_negative_element(self):
        with pytest.raises(SchemaError, match="natural"):
            vocabulary({"p": 1}).check_fact("p", (-3,))

    def test_non_integer_element(self):
        with pytest.raises(SchemaError):
            vocabulary({"p": 1}).check_fact("p", ("a",))


class TestDerived:
    def test_max_arity(self):
        assert vocabulary({"p": 1, "q": 3}).max_arity() == 3
        assert Vocabulary().max_arity() == 1

    def test_merge(self):
        a = vocabulary({"p": 1})
        b = vocabulary({"q": 2}, constants=["c"])
        merged = a.merge(b)
        assert merged.arity("p") == 1 and merged.arity("q") == 2
        assert "c" in merged.constant_symbols

    def test_merge_conflict(self):
        with pytest.raises(SchemaError, match="arities"):
            vocabulary({"p": 1}).merge(vocabulary({"p": 2}))

    def test_from_formula(self):
        f = parse("forall x . G (Sub(x) -> edge(x, Vip))")
        v = Vocabulary.from_formula(f)
        assert v.arity("Sub") == 1 and v.arity("edge") == 2
        assert v.constant_symbols == {"Vip"}

    def test_from_formula_skips_builtins(self):
        f = parse("forall x y . succ(x, y) -> p(x)")
        v = Vocabulary.from_formula(f)
        assert not v.has_predicate("succ")
        assert v.has_predicate("p")

    def test_from_formula_arity_conflict(self):
        with pytest.raises(SchemaError):
            Vocabulary.from_formula(parse("p(x) & p(x, y)"))
