"""Tests for finite-history FOTL evaluation (exact past, truncated future)."""

import pytest

from repro.database import History, vocabulary
from repro.errors import EvaluationError
from repro.eval import evaluate_finite, evaluate_past
from repro.logic import parse

V = vocabulary({"p": 1, "q": 1, "edge": 2})
VC = vocabulary({"p": 1}, constants=["C"])


def hist(*facts_per_state, constants=None, vocab=V):
    return History.from_facts(vocab, list(facts_per_state), constants)


class TestStateFormulas:
    def test_atom(self):
        h = hist([("p", (1,))])
        assert evaluate_finite(parse("exists x . p(x)"), h)
        assert not evaluate_finite(parse("exists x . q(x)"), h)

    def test_forall_over_infinite_universe(self):
        # 'forall x . p(x)' is false: the universe has untouched elements.
        h = hist([("p", (1,))])
        assert not evaluate_finite(parse("forall x . p(x)"), h)

    def test_forall_negative(self):
        h = hist([("p", (1,))])
        assert evaluate_finite(parse("forall x . !q(x)"), h)

    def test_equality_and_fresh_elements(self):
        # Distinct fresh elements exist: exists x y . x != y & !p(x) & !p(y)
        h = hist([("p", (1,))])
        f = parse("exists x . exists y . x != y & !p(x) & !p(y)")
        assert evaluate_finite(f, h)

    def test_constants(self):
        h = hist([("p", (7,))], constants={"C": 7}, vocab=VC)
        assert evaluate_finite(parse("p(C)"), h)

    def test_unbound_constant_raises(self):
        h = hist([("p", (1,))])
        with pytest.raises(Exception):
            evaluate_finite(parse("p(C)"), h)

    def test_unbound_variable_raises(self):
        h = hist([("p", (1,))])
        with pytest.raises(EvaluationError, match="unbound"):
            evaluate_finite(parse("p(x)"), h)


class TestPast:
    def test_prev_false_at_origin(self):
        h = hist([("p", (1,))], [])
        assert not evaluate_past(parse("Y (exists x . p(x))"), h, instant=0)
        assert evaluate_past(parse("Y (exists x . p(x))"), h, instant=1)

    def test_once(self):
        h = hist([("p", (1,))], [], [])
        assert evaluate_past(parse("exists x . O p(x)"), h, instant=2)

    def test_since(self):
        # q(1) at t0, p(1) at t1 and t2: p S q at t2.
        h = hist([("q", (1,))], [("p", (1,))], [("p", (1,))])
        f = parse("exists x . p(x) S q(x)")
        assert evaluate_past(f, h, instant=2)

    def test_since_broken_chain(self):
        h = hist([("q", (1,))], [], [("p", (1,))])
        f = parse("exists x . p(x) S q(x)")
        assert not evaluate_past(f, h, instant=2)

    def test_historically(self):
        h = hist([("p", (1,))], [("p", (1,))])
        assert evaluate_past(parse("exists x . H p(x)"), h, instant=1)

    def test_future_rejected_in_past_mode(self):
        h = hist([])
        with pytest.raises(EvaluationError, match="future"):
            evaluate_past(parse("X (exists x . p(x))"), h)

    def test_default_instant_is_now(self):
        h = hist([("p", (1,))], [("q", (1,))])
        assert evaluate_past(parse("exists x . Y p(x)"), h)


class TestTruncatedFuture:
    def test_next_policies(self):
        h = hist([("p", (1,))])
        f = parse("X (exists x . p(x))")
        assert not evaluate_finite(f, h, future="strong")
        assert evaluate_finite(f, h, future="weak")
        with pytest.raises(EvaluationError):
            evaluate_finite(f, h, future="error")

    def test_until_fulfilled_within_history(self):
        h = hist([("p", (1,))], [("q", (1,))])
        f = parse("exists x . p(x) U q(x)")
        assert evaluate_finite(f, h, future="strong")

    def test_until_pending(self):
        h = hist([("p", (1,))], [("p", (1,))])
        f = parse("exists x . p(x) U q(x)")
        assert not evaluate_finite(f, h, future="strong")
        assert evaluate_finite(f, h, future="weak")

    def test_always_strong_is_false(self):
        h = hist([("p", (1,))])
        f = parse("G (exists x . p(x))")
        assert not evaluate_finite(f, h, future="strong")
        assert evaluate_finite(f, h, future="weak")

    def test_polarity_flips_at_negation(self):
        # Weak evaluation of X f and of !X f are both true at the end —
        # weak truth is an upper bound, not a consistent valuation.
        h = hist([])
        f = "X (exists x . p(x))"
        assert evaluate_finite(parse(f), h, future="weak")
        assert evaluate_finite(parse(f"!({f})"), h, future="weak")

    def test_biconditional_with_next_is_weakly_true_at_end(self):
        h = hist([("p", (1,))])
        f = parse("(X (exists x . p(x))) <-> (exists x . p(x))")
        assert evaluate_finite(f, h, future="weak")

    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            evaluate_finite(parse("p(n0)"), hist([]), future="maybe")

    def test_instant_bounds(self):
        with pytest.raises(EvaluationError):
            evaluate_finite(parse("true"), hist([]), instant=5)


class TestWeakIsUpperBound:
    """If some infinite extension satisfies f, the weak evaluation is true
    (the property the baseline checker relies on)."""

    @pytest.mark.parametrize(
        "text",
        [
            "G (exists x . p(x) -> X q(x))",
            "forall x . G (p(x) -> F q(x))",
            "exists x . p(x) U q(x)",
            "forall x . G (p(x) -> X G !p(x))",
        ],
    )
    def test_weak_true_on_extendable_prefixes(self, text):
        from repro.database import LassoDatabase
        from repro.eval import evaluate_lasso_db

        f = parse(text)
        h = hist([("p", (1,))], [("q", (1,))])
        db = LassoDatabase.constant_extension(
            History(vocabulary=V, states=h.states[:1])
        )
        # Only check the implication when an actual extension exists.
        extension_exists = False
        try:
            extension_exists = evaluate_lasso_db(f, db)
        except Exception:
            pass
        if extension_exists:
            assert evaluate_finite(f, h.truncated(1), future="weak")


class TestBuiltins:
    def test_builtin_requires_domain(self):
        h = hist([("p", (1,))])
        f = parse("exists x . Zero(x) & p(x)")
        with pytest.raises(EvaluationError, match="domain"):
            evaluate_finite(f, h)

    def test_builtin_with_domain(self):
        h = hist([("p", (0,))])
        f = parse("exists x . Zero(x) & p(x)")
        assert evaluate_finite(f, h, domain=frozenset(range(3)))

    def test_succ_and_leq(self):
        h = hist([("p", (0,)), ("p", (1,))])
        dom = frozenset(range(3))
        assert evaluate_finite(
            parse("exists x y . succ(x, y) & p(x) & p(y)"), h, domain=dom
        )
        assert evaluate_finite(
            parse("forall x y . (p(x) & succ(x, y) & p(y)) -> leq(x, y)"),
            h,
            domain=dom,
        )
