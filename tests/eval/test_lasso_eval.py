"""Tests for exact FOTL evaluation on lasso databases."""

import pytest

from repro.database import History, LassoDatabase, vocabulary
from repro.errors import EvaluationError
from repro.eval import evaluate_lasso_db, models
from repro.logic import parse

V = vocabulary({"Sub": 1, "Fill": 1})


def db(stem_facts, loop_facts):
    stem = History.from_facts(V, stem_facts) if stem_facts else None
    loop = History.from_facts(V, loop_facts)
    return LassoDatabase(
        vocabulary=V,
        stem=stem.states if stem else (),
        loop=loop.states,
    )


class TestQuantifiersOnLassos:
    def test_exists_in_loop(self):
        d = db([[]], [[("Sub", (1,))]])
        assert evaluate_lasso_db(parse("F (exists x . Sub(x))"), d)

    def test_forall_with_fresh_element(self):
        d = db([], [[("Sub", (1,))]])
        # Not all elements are ever submitted (fresh elements never are).
        assert not evaluate_lasso_db(parse("forall x . F Sub(x)"), d)

    def test_negated_quantification(self):
        d = db([], [[]])
        assert evaluate_lasso_db(parse("G (forall x . !Sub(x))"), d)


class TestPaperConstraintsOnLassos:
    def test_submit_once_positive(self, submit_once):
        d = db([[("Sub", (1,))], [("Sub", (2,))]], [[]])
        assert models(d, submit_once)

    def test_submit_once_negative(self, submit_once):
        d = db([[("Sub", (1,))], [("Sub", (1,))]], [[]])
        assert not models(d, submit_once)

    def test_submit_once_loop_violation(self, submit_once):
        # Submitting in the loop violates: the loop repeats forever.
        d = db([], [[("Sub", (1,))]])
        assert not models(d, submit_once)

    def test_fifo_positive(self, fifo_fill):
        d = db(
            [[("Sub", (1,))], [("Sub", (2,))], [("Fill", (1,))],
             [("Fill", (2,))]],
            [[]],
        )
        assert models(d, fifo_fill)

    def test_fifo_negative(self, fifo_fill):
        d = db(
            [[("Sub", (1,))], [("Sub", (2,))], [("Fill", (2,))]],
            [[]],
        )
        assert not models(d, fifo_fill)


class TestRestrictions:
    def test_past_rejected(self):
        d = db([], [[]])
        with pytest.raises(EvaluationError, match="past"):
            evaluate_lasso_db(parse("G (exists x . O Sub(x))"), d)

    def test_builtins_need_domain(self):
        d = db([], [[("Sub", (0,))]])
        with pytest.raises(EvaluationError, match="domain"):
            evaluate_lasso_db(parse("exists x . Zero(x) & Sub(x)"), d)

    def test_builtins_with_domain(self):
        d = db([], [[("Sub", (0,))]])
        assert evaluate_lasso_db(
            parse("exists x . Zero(x) & F Sub(x)"),
            d,
            domain=frozenset(range(2)),
        )


class TestInstants:
    def test_evaluation_at_later_instant(self):
        d = db([[("Sub", (1,))]], [[]])
        f = parse("exists x . Sub(x)")
        assert evaluate_lasso_db(f, d, instant=0)
        assert not evaluate_lasso_db(f, d, instant=1)
        assert not evaluate_lasso_db(f, d, instant=100)

    def test_negative_instant_rejected(self):
        with pytest.raises(ValueError):
            evaluate_lasso_db(parse("true"), db([], [[]]), instant=-1)


class TestAgainstFinitePrefix:
    """Lasso truth of past-free formulas is bracketed by strong/weak
    truncated evaluation on prefixes."""

    @pytest.mark.parametrize(
        "text",
        [
            "G (exists x . Sub(x) -> X (exists y . Fill(y)))",
            "F (exists x . Fill(x))",
            "forall x . G (Sub(x) -> X G !Sub(x))",
            "exists x . Sub(x) U Fill(x)",
        ],
    )
    @pytest.mark.parametrize("prefix_len", [1, 3, 6])
    def test_bracket(self, text, prefix_len):
        from repro.eval import evaluate_finite

        f = parse(text)
        d = db(
            [[("Sub", (1,))], [("Fill", (1,))]],
            [[("Sub", (2,))], [("Fill", (2,))]],
        )
        truth = evaluate_lasso_db(f, d)
        prefix = d.prefix(prefix_len)
        strong = evaluate_finite(f, prefix, future="strong")
        weak = evaluate_finite(f, prefix, future="weak")
        if strong:
            assert truth
        if truth:
            assert weak
