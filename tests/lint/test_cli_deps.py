"""The ``repro-tic analyze-deps`` subcommand and ``lint --deps``."""

import json

from repro.cli import DEPS_JSON_VERSION, main

CLEAN = "forall x . G (Sub(x) -> X G !Sub(x))"
IDLE = "forall x . G (x = x)"


class TestLintDepsFlag:
    def test_deps_diagnostics_appear(self, capsys):
        assert main(["lint", "--deps", CLEAN]) == 0
        out = capsys.readouterr().out
        assert "TIC122" in out

    def test_deps_with_vocabulary(self, capsys):
        assert main(
            ["lint", "--deps", "--vocabulary", "Sub:1,Audit:2", CLEAN]
        ) == 0
        out = capsys.readouterr().out
        assert "TIC121" in out and "Audit" in out

    def test_deps_off_without_flag(self, capsys):
        assert main(["lint", CLEAN]) == 0
        assert "TIC122" not in capsys.readouterr().out

    def test_statically_idle_constraint_warns(self, capsys):
        assert main(["lint", "--deps", IDLE]) == 0
        capsys.readouterr()
        assert main(["lint", "--deps", "--strict", IDLE]) == 1
        assert "TIC123" in capsys.readouterr().out

    def test_bad_vocabulary_spec_is_usage_error(self, capsys):
        assert main(["lint", "--deps", "--vocabulary", "Sub", CLEAN]) == 2
        assert "Name:arity" in capsys.readouterr().err


class TestAnalyzeDeps:
    def write_constraints(self, tmp_path):
        path = tmp_path / "constraints.tic"
        path.write_text(
            "# once: no resubmission\n"
            f"{CLEAN}\n"
            "\n"
            "# fill: nothing is ever filled\n"
            "forall x . G !Fill(x)\n"
        )
        return path

    def test_json_document_shape(self, tmp_path, capsys):
        path = self.write_constraints(tmp_path)
        assert main(["analyze-deps", str(path)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == DEPS_JSON_VERSION
        assert set(doc) == {
            "version",
            "constraints",
            "relations",
            "vocabulary",
            "dead",
            "unmonitored",
            "summary",
        }
        assert set(doc["constraints"]) == {"once", "fill"}
        once = doc["constraints"]["once"]
        assert once["relations"]["Sub"] == {"positive": 0, "negative": 2}
        assert once["pure_negative"] is True
        assert once["idle_class"] == "live"
        assert once["static_verdict"] is None
        assert doc["relations"]["Sub"]["monitored_by"] == ["once"]
        assert doc["vocabulary"] is None
        assert doc["summary"]["constraints"] == 2

    def test_vocabulary_reports_dead_and_unmonitored(self, tmp_path, capsys):
        path = self.write_constraints(tmp_path)
        assert main(
            ["analyze-deps", str(path), "--vocabulary", "Sub:1,Audit:2"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["vocabulary"] == {"Audit": 2, "Sub": 1}
        # fill only mentions Fill, which the vocabulary does not declare.
        assert doc["dead"] == ["fill"]
        assert doc["unmonitored"] == ["Audit"]

    def test_strict_fails_on_findings(self, tmp_path, capsys):
        path = self.write_constraints(tmp_path)
        assert main(
            [
                "analyze-deps",
                str(path),
                "--vocabulary",
                "Sub:1,Audit:2",
                "--strict",
            ]
        ) == 1
        capsys.readouterr()
        assert main(
            [
                "analyze-deps",
                str(path),
                "--vocabulary",
                "Sub:1,Fill:1",
                "--strict",
            ]
        ) == 0

    def test_expression_target(self, capsys):
        assert main(["analyze-deps", IDLE]) == 0
        doc = json.loads(capsys.readouterr().out)
        entry = doc["constraints"]["c0"]
        assert entry["state_independent"] is True
        assert entry["idle_class"] == "state_independent"
        assert entry["static_verdict"] is True
