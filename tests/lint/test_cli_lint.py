"""The ``repro-tic lint`` subcommand and the CLI exit-code contract."""

import json

from repro.cli import LINT_JSON_VERSION, main

SIGMA1 = "forall x . G (p(x) -> F (exists y . q(x, y)))"
CLEAN = "forall x . G (Sub(x) -> X G !Sub(x))"
VACUOUS = "forall x y . G !Sub(x)"


class TestLintExpression:
    def test_clean_constraint_exits_zero(self, capsys):
        assert main(["lint", CLEAN]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_sigma1_emits_tic_coded_error(self, capsys):
        assert main(["lint", SIGMA1]) == 1
        out = capsys.readouterr().out
        assert "TIC003" in out
        assert "Theorem 3.2" in out
        # Source span rendered as a caret underline.
        assert "^" in out

    def test_strict_fails_on_warnings(self, capsys):
        assert main(["lint", VACUOUS]) == 0
        capsys.readouterr()
        assert main(["lint", VACUOUS, "--strict"]) == 1
        assert "TIC011" in capsys.readouterr().out

    def test_trigger_mode(self, capsys):
        assert main(["lint", "--trigger", "F (Sub(x) & X F Sub(x))"]) == 0
        capsys.readouterr()
        assert main(["lint", "--trigger", "G Sub(x)"]) == 1
        assert "TIC009" in capsys.readouterr().out

    def test_domain_size_feeds_cost_estimate(self, capsys):
        assert main(["lint", CLEAN, "--domain-size", "100"]) == 0
        assert "101^1" in capsys.readouterr().out

    def test_unparsable_expression_is_a_finding(self, capsys):
        # Inside lint, a bad constraint is a TIC000 diagnostic (exit 1),
        # not a usage error (exit 2) — batch linting must keep going.
        assert main(["lint", "forall x ."]) == 1
        assert "TIC000" in capsys.readouterr().out


class TestLintFile:
    def test_file_target_lints_every_line(self, tmp_path, capsys):
        path = tmp_path / "constraints.tic"
        path.write_text(
            "# order workload\n"
            f"{CLEAN}\n"
            "\n"
            f"{SIGMA1}\n"
        )
        assert main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert "2 constraint(s)" in out

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "constraints.tic"
        path.write_text(f"{CLEAN}\n")
        assert main(["lint", str(path)]) == 0
        capsys.readouterr()


class TestLintJson:
    def payload(self, capsys, *argv):
        code = main(["lint", "--json", *argv])
        return code, json.loads(capsys.readouterr().out)

    def test_schema_top_level(self, capsys):
        code, payload = self.payload(capsys, SIGMA1)
        assert code == 1
        assert set(payload) == {
            "version",
            "mode",
            "semantic",
            "results",
            "summary",
        }
        assert payload["version"] == LINT_JSON_VERSION
        assert payload["mode"] == "constraint"
        assert payload["semantic"] is False
        assert set(payload["summary"]) == {
            "constraints",
            "error",
            "warning",
            "info",
        }

    def test_results_carry_report_schema(self, capsys):
        _code, payload = self.payload(capsys, SIGMA1)
        (result,) = payload["results"]
        assert set(result) == {
            "source",
            "formula",
            "mode",
            "ok",
            "counts",
            "diagnostics",
        }
        assert result["ok"] is False
        codes = [d["code"] for d in result["diagnostics"]]
        assert "TIC003" in codes
        tic003 = next(
            d for d in result["diagnostics"] if d["code"] == "TIC003"
        )
        assert tic003["paper"] == "Theorem 3.2"
        assert tic003["span"]["column"] == 26

    def test_summary_counts_aggregate_files(self, tmp_path, capsys):
        path = tmp_path / "constraints.tic"
        path.write_text(f"{CLEAN}\n{SIGMA1}\n")
        _code, payload = self.payload(capsys, str(path))
        assert payload["summary"]["constraints"] == 2
        assert payload["summary"]["error"] >= 2  # TIC003 + TIC005

    def test_trigger_mode_recorded(self, capsys):
        code, payload = self.payload(capsys, "--trigger", "G Sub(x)")
        assert code == 1
        assert payload["mode"] == "trigger"


SEEDED = (
    "# fill_once\n"
    "forall x . G (Fill(x) -> X G !Fill(x))\n"
    "# fill_once_weak\n"
    "forall x . G (Fill(x) -> X !Fill(x))\n"
    "# always_submitted\n"
    "forall x . G Sub(x)\n"
)


class TestLintSemantic:
    def seeded_path(self, tmp_path):
        path = tmp_path / "seeded.tic"
        path.write_text(SEEDED)
        return str(path)

    def test_semantic_reports_redundancy_and_unsat(
        self, tmp_path, capsys
    ):
        assert main(["lint", "--semantic", self.seeded_path(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "TIC110" in out
        assert "fill_once" in out
        assert "TIC100" in out

    def test_comment_names_used_in_diagnostics(self, tmp_path, capsys):
        main(["lint", "--semantic", self.seeded_path(tmp_path)])
        out = capsys.readouterr().out
        assert "subsumed by constraint 'fill_once'" in out

    def test_without_semantic_no_tic1xx(self, tmp_path, capsys):
        assert main(["lint", self.seeded_path(tmp_path)]) == 0
        assert "TIC1" not in capsys.readouterr().out

    def test_json_marker_and_version(self, tmp_path, capsys):
        main(["lint", "--semantic", "--json", self.seeded_path(tmp_path)])
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == LINT_JSON_VERSION == 2
        assert payload["semantic"] is True
        assert payload["summary"]["error"] >= 1
        assert payload["summary"]["warning"] >= 1

    def test_serial_matches_jobs(self, tmp_path, capsys):
        path = self.seeded_path(tmp_path)
        main(["lint", "--semantic", "--json", path])
        serial = json.loads(capsys.readouterr().out)
        main(["lint", "--semantic", "--json", "--jobs", "4", path])
        parallel = json.loads(capsys.readouterr().out)
        assert serial == parallel

    def test_parse_failure_excluded_from_set(self, tmp_path, capsys):
        path = tmp_path / "mixed.tic"
        path.write_text(f"forall x .\n{SEEDED}")
        assert main(["lint", "--semantic", str(path)]) == 1
        out = capsys.readouterr().out
        assert "TIC000" in out
        assert "TIC110" in out
        assert "4 constraint(s)" in out

    def test_trigger_constraint_set(self, tmp_path, capsys):
        constraints = tmp_path / "cons.tic"
        constraints.write_text("# never_fill\nforall x . G !Fill(x)\n")
        assert (
            main(
                [
                    "lint",
                    "--trigger",
                    "--semantic",
                    "--constraint-set",
                    str(constraints),
                    "Fill(x)",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "TIC112" in out
        assert "never_fill" in out

    def test_constraint_set_requires_trigger(self, tmp_path, capsys):
        constraints = tmp_path / "cons.tic"
        constraints.write_text("forall x . G !Fill(x)\n")
        code = main(
            ["lint", "--semantic", "--constraint-set", str(constraints), "G p"]
        )
        assert code == 2
        assert "--trigger" in capsys.readouterr().err

    def test_reference_engine(self, tmp_path, capsys):
        assert (
            main(
                [
                    "lint",
                    "--semantic",
                    "--engine",
                    "reference",
                    self.seeded_path(tmp_path),
                ]
            )
            == 1
        )
        assert "TIC110" in capsys.readouterr().out


class TestExitCodeContract:
    """0 = success, 1 = analysis failure, 2 = usage/input error."""

    def test_classify_strict_undecidable_exits_one(self, capsys):
        formula = "forall x . G (exists y . q(x, y))"
        assert main(["classify", formula]) == 0
        capsys.readouterr()
        assert main(["classify", formula, "--strict"]) == 1

    def test_classify_strict_decidable_exits_zero(self, capsys):
        assert main(["classify", CLEAN, "--strict"]) == 0
        capsys.readouterr()

    def test_classify_syntax_error_exits_two(self, capsys):
        assert main(["classify", "forall x ."]) == 2
        err = capsys.readouterr().err
        assert "syntax error" in err
        assert "line 1" in err

    def test_lint_missing_file_exits_two(self, tmp_path, capsys):
        # A target that looks like a path but does not exist is a usage
        # error, not a TIC000 finding on the path text itself.
        missing = tmp_path / "nope.tic"
        assert main(["lint", str(missing)]) == 2
        assert "file not found" in capsys.readouterr().err

    def test_lint_negative_domain_size_exits_two(self, capsys):
        assert main(["lint", CLEAN, "--domain-size", "-5"]) == 2
        assert "non-negative" in capsys.readouterr().err
