"""Tests for the TIC12x dependence lint passes (repro.lint.deps)."""

import pytest

from repro.database import vocabulary
from repro.lint import (
    DEPS_PASS_REGISTRY,
    LintWarning,
    deps_passes,
    lint_constraint_set,
    lint_formula,
    preflight,
)
from repro.logic import parse

ORDER_VOCAB = vocabulary({"Sub": 1, "Fill": 1})


def codes(report):
    return [d.code for d in report.diagnostics]


def deps_codes(report):
    return [c for c in codes(report) if c.startswith("TIC12")]


def lint_deps(text, **kwargs):
    return lint_formula(parse(text), deps=True, **kwargs)


class TestRegistry:
    def test_deps_passes_registered(self):
        declared = {code for p in deps_passes() for code in p.codes}
        assert declared == {"TIC120", "TIC121", "TIC122", "TIC123"}

    def test_disjoint_from_other_registries(self):
        from repro.lint import PASS_REGISTRY, SEMANTIC_PASS_REGISTRY

        assert not set(DEPS_PASS_REGISTRY) & set(PASS_REGISTRY)
        assert not set(DEPS_PASS_REGISTRY) & set(SEMANTIC_PASS_REGISTRY)

    def test_deps_off_by_default(self):
        report = lint_formula(parse("forall x . G (x = x)"))
        assert not deps_codes(report)


class TestDeadConstraint:
    def test_tic120_fires_outside_vocabulary(self):
        report = lint_deps(
            "forall x . G Audit(x)", vocabulary=ORDER_VOCAB
        )
        assert "TIC120" in codes(report)

    def test_tic120_silent_when_any_relation_declared(self):
        report = lint_deps(
            "forall x . G (Sub(x) -> !Audit(x))", vocabulary=ORDER_VOCAB
        )
        assert "TIC120" not in codes(report)

    def test_tic120_silent_without_vocabulary(self):
        assert "TIC120" not in codes(lint_deps("forall x . G Audit(x)"))

    def test_tic120_silent_for_state_independent(self):
        # No relations at all is TIC123's case, not a dead constraint.
        report = lint_deps("forall x . G (x = x)", vocabulary=ORDER_VOCAB)
        assert "TIC120" not in codes(report)


class TestUnmonitoredRelation:
    def test_tic121_fires_for_unmentioned_relation(self):
        wide = vocabulary({"Sub": 1, "Audit": 2})
        report = lint_deps("forall x . G !Sub(x)", vocabulary=wide)
        tic121 = [d for d in report.diagnostics if d.code == "TIC121"]
        assert len(tic121) == 1
        assert "Audit" in tic121[0].message

    def test_tic121_silent_when_all_relations_mentioned(self):
        report = lint_deps(
            "forall x . G (Sub(x) -> X G !Fill(x))", vocabulary=ORDER_VOCAB
        )
        assert "TIC121" not in codes(report)

    def test_tic121_reported_once_per_set(self):
        wide = vocabulary({"Sub": 1, "Fill": 1, "Audit": 2})
        reports = lint_constraint_set(
            {
                "once": parse("forall x . G (Sub(x) -> X G !Sub(x))"),
                "fill": parse("forall x . G !Fill(x)"),
            },
            vocabulary=wide,
            semantic=False,
            deps=True,
        )
        hits = [
            d
            for report in reports
            for d in report.diagnostics
            if d.code == "TIC121"
        ]
        # The set as a whole covers Sub and Fill; only Audit is reported,
        # and only on the first constraint.
        assert len(hits) == 1
        assert "Audit" in hits[0].message


class TestPolarityMonotonicity:
    def test_tic122_pure_negative(self):
        report = lint_deps("forall x . G (Sub(x) -> X G !Sub(x))")
        tic122 = [d for d in report.diagnostics if d.code == "TIC122"]
        assert len(tic122) == 1
        assert "only negatively" in tic122[0].message

    def test_tic122_pure_positive(self):
        report = lint_deps("forall x . G Sub(x)")
        tic122 = [d for d in report.diagnostics if d.code == "TIC122"]
        assert len(tic122) == 1
        assert "only positively" in tic122[0].message

    def test_tic122_silent_for_mixed_polarity(self):
        # Iff puts Sub on both sides with both polarities: mixed.
        report = lint_deps("forall x . G (Sub(x) <-> X Sub(x))")
        assert "TIC122" not in codes(report)


class TestStaticallyIdle:
    def test_tic123_valid_constraint(self):
        report = lint_deps("forall x . G (x = x)")
        tic123 = [d for d in report.diagnostics if d.code == "TIC123"]
        assert len(tic123) == 1
        assert "holds over every history" in tic123[0].message

    def test_tic123_unsatisfiable_constraint(self):
        report = lint_deps("forall x . F !(x = x)")
        tic123 = [d for d in report.diagnostics if d.code == "TIC123"]
        assert "violated by every history" in tic123[0].message

    def test_tic123_silent_for_state_dependent(self):
        assert "TIC123" not in codes(lint_deps("forall x . G Sub(x)"))


class TestPreflightGate:
    def test_preflight_runs_deps_passes(self):
        # The equality-only formula also trips TIC007, so capture every
        # LintWarning and look for the dependence one.
        with pytest.warns(LintWarning) as record:
            report = preflight(parse("forall x . G (x = x)"), deps=True)
        assert any("statically idle" in str(w.message) for w in record)
        assert "TIC123" in codes(report)

    def test_preflight_skips_deps_by_default(self):
        report = preflight(parse("forall x . G Sub(x)"), gate="off")
        assert not deps_codes(report)
