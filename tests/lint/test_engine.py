"""Engine behavior: registry, modes, report model, JSON schema stability."""

import json

import pytest

from repro.lint import (
    MODES,
    PASS_REGISTRY,
    Diagnostic,
    LintContext,
    Severity,
    all_passes,
    lint_formula,
    lint_source,
    register,
)
from repro.lint.diagnostics import sort_diagnostics
from repro.logic import parse
from repro.logic.spans import Span


class TestRegistry:
    def test_all_eleven_passes_registered(self):
        passes = all_passes()
        assert len(passes) >= 11
        covered = {code for p in passes for code in p.codes}
        assert covered >= {f"TIC{n:03d}" for n in range(1, 12)}

    def test_passes_declare_metadata(self):
        for lint_pass in all_passes():
            assert lint_pass.name
            assert lint_pass.codes
            assert lint_pass.description
            assert set(lint_pass.modes) <= set(MODES)

    def test_duplicate_registration_rejected(self):
        existing = next(iter(PASS_REGISTRY.values()))
        with pytest.raises(ValueError, match="duplicate"):
            register(existing)

    def test_pass_subset_selection(self, submit_once):
        sentence = PASS_REGISTRY["sentence"]
        report = lint_formula(parse("G p(x)"), passes=[sentence])
        assert report.codes() == ("TIC001",)
        assert lint_formula(submit_once, passes=[sentence]).diagnostics == ()


class TestModes:
    def test_unknown_mode_rejected(self, submit_once):
        with pytest.raises(ValueError, match="mode"):
            lint_formula(submit_once, mode="nonsense")

    def test_trigger_mode_skips_constraint_only_passes(self):
        # Free variables + liveness: both fine for a trigger condition.
        report = lint_source("F (Sub(x) & X F Sub(x))", mode="trigger")
        assert report.ok


class TestParseErrorDiagnostic:
    def test_tic000_instead_of_exception(self):
        report = lint_source("forall x .")
        assert report.codes() == ("TIC000",)
        (diag,) = report.diagnostics
        assert diag.severity is Severity.ERROR
        assert "syntax error" in diag.message
        assert not report.ok

    def test_tic000_span_points_at_offender(self):
        report = lint_source("p & @")
        (diag,) = report.diagnostics
        assert diag.span is not None
        assert diag.span.column == 5


class TestSpanFallback:
    def test_programmatic_formula_has_no_span(self):
        from repro.logic.builders import always, atom, eventually

        synthetic = eventually(always(atom("p")))
        report = lint_formula(synthetic)
        (diag,) = report.by_code("TIC005")
        assert diag.span is None

    def test_ancestor_span_used_for_rebuilt_nodes(self):
        # The whole-formula span is the outermost fallback.
        ctx = LintContext(formula=parse("forall x . G p(x)"))
        from repro.logic.builders import atom

        foreign = atom("unrelated")
        assert ctx.span_of(foreign) == ctx.span_of(ctx.formula)


class TestReportModel:
    def test_sorted_by_severity_then_position(self):
        span_a = Span(5, 6, 1, 6, 1, 7)
        span_b = Span(2, 3, 1, 3, 1, 4)
        diagnostics = sort_diagnostics(
            [
                Diagnostic("TIC010", Severity.INFO, "i"),
                Diagnostic("TIC005", Severity.ERROR, "e2", span=span_a),
                Diagnostic("TIC007", Severity.WARNING, "w"),
                Diagnostic("TIC003", Severity.ERROR, "e1", span=span_b),
            ]
        )
        assert [d.code for d in diagnostics] == [
            "TIC003",
            "TIC005",
            "TIC007",
            "TIC010",
        ]

    def test_format_underlines_span(self):
        report = lint_source("forall x . G (p(x) -> F (exists y . q(x, y)))")
        rendered = report.format()
        assert "^" in rendered
        assert "TIC003" in rendered

    def test_codes_deduplicated_in_order(self):
        report = lint_source("forall x y . G !Sub(x)")
        codes = report.codes()
        assert len(codes) == len(set(codes))


class TestJsonSchema:
    """The --json key sets are a stable contract (LINT_JSON_VERSION)."""

    DIAGNOSTIC_KEYS = {"code", "severity", "message", "paper", "span", "pass"}
    REPORT_KEYS = {"source", "formula", "mode", "ok", "counts", "diagnostics"}
    SPAN_KEYS = {"start", "end", "line", "column", "end_line", "end_column"}

    def test_diagnostic_keys(self):
        report = lint_source("forall x . G (p(x) -> F (exists y . q(x, y)))")
        for diag in report.diagnostics:
            payload = diag.to_dict()
            assert set(payload) == self.DIAGNOSTIC_KEYS
            if payload["span"] is not None:
                assert set(payload["span"]) == self.SPAN_KEYS

    def test_report_keys(self):
        payload = lint_source("forall x . G !Sub(x)").to_dict()
        assert set(payload) == self.REPORT_KEYS
        assert set(payload["counts"]) == {"error", "warning", "info"}

    def test_payload_is_json_serializable(self):
        payload = lint_source(
            "forall x . G (p(x) -> F (exists y . q(x, y)))"
        ).to_dict()
        round_tripped = json.loads(json.dumps(payload))
        assert round_tripped == payload

    def test_severity_serialized_as_string(self):
        report = lint_source("G p(x)")
        assert report.to_dict()["diagnostics"][0]["severity"] == "error"
