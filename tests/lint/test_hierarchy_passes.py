"""The TIC13x temporal-hierarchy lint passes and the ``plan`` subcommand."""

import json

import pytest

from repro.cli import PLAN_JSON_VERSION, main
from repro.lint import (
    HIERARCHY_PASS_REGISTRY,
    hierarchy_passes,
    lint_formula,
    register_hierarchy,
)
from repro.logic import parse

SAFE = "forall x . G (Sub(x) -> X G !Sub(x))"
PAST = "forall x . G (Fill(x) -> Y O Sub(x))"
VALID_COSAFETY = "forall x . F (Sub(x) | !Sub(x))"
GENERAL = "forall x . G F Sub(x)"
DEEP = "forall x . Sub(x) -> " + "X " * 9 + "Fill(x)"


def codes(report):
    return [d.code for d in report.diagnostics]


class TestHierarchyPasses:
    def test_registry_covers_tic130_to_134(self):
        registered = {
            code for pass_ in hierarchy_passes() for code in pass_.codes
        }
        assert len(hierarchy_passes()) == len(HIERARCHY_PASS_REGISTRY)
        assert registered == {
            "TIC130", "TIC131", "TIC132", "TIC133", "TIC134", "TIC140",
        }

    def test_off_by_default(self):
        report = lint_formula(parse(SAFE))
        assert not any(c.startswith("TIC13") for c in codes(report))

    def test_class_and_dispatch_reported(self):
        report = lint_formula(parse(SAFE), hierarchy=True)
        assert "TIC130" in codes(report)
        assert "TIC134" in codes(report)
        summary = report.by_code("TIC134")[0]
        assert "progression-safety" in summary.message

    def test_past_closed_dispatches_to_pasteval(self):
        report = lint_formula(parse(PAST), hierarchy=True)
        assert "pasteval" in report.by_code("TIC134")[0].message

    def test_retired_at_birth_warns(self):
        report = lint_formula(parse(VALID_COSAFETY), hierarchy=True)
        assert "TIC132" in codes(report)

    def test_general_class_no_retired_warning(self):
        report = lint_formula(parse(GENERAL), hierarchy=True)
        assert "TIC132" not in codes(report)
        assert "TIC133" not in codes(report)
        assert "progression-full" in report.by_code("TIC134")[0].message

    def test_lookahead_depth_warns(self):
        report = lint_formula(parse(DEEP), hierarchy=True)
        assert "TIC133" in codes(report)

    def test_shallow_lookahead_silent(self):
        report = lint_formula(
            parse("forall x . Sub(x) -> X X Fill(x)"), hierarchy=True
        )
        assert "TIC133" not in codes(report)

    def test_crosscheck_silent_on_sound_classifier(self):
        # TIC131 firing would mean a classifier bug; the whole corpus
        # (tests/analysis/test_hierarchy.py) backs this zero.
        for text in [SAFE, PAST, VALID_COSAFETY, GENERAL]:
            report = lint_formula(parse(text), hierarchy=True)
            assert "TIC131" not in codes(report)

    def test_register_rejects_duplicate_name(self):
        with pytest.raises(ValueError):
            @register_hierarchy
            class Duplicate:
                name = "hierarchy-class"
                codes = ("TIC999",)
                description = "dup"
                paper = ""
                modes = ("constraint",)

                def run(self, ctx):  # pragma: no cover - never runs
                    return ()

    def test_hierarchy_passes_are_constraint_mode_only(self):
        for pass_ in hierarchy_passes():
            assert pass_.modes == ("constraint",)


class TestStalenessBudgetPass:
    def severities(self, text):
        report = lint_formula(parse(text), hierarchy=True)
        return [
            (d.code, d.severity.value)
            for d in report.by_code("TIC140")
        ]

    def test_zero_budget_ban_is_error(self):
        from repro.workloads import refresh_deadline

        from repro.logic import to_str

        zero = to_str(refresh_deadline("price", 0))
        assert self.severities(zero) == [("TIC140", "error")]

    def test_explicit_negation_spelling_is_error(self):
        # The parser folds `A -> false` into `!A`; both spellings of the
        # ban trip the pass.
        assert self.severities("forall x . G !Sub(x)") == [
            ("TIC140", "error")
        ]

    def test_vacuous_window_is_warning(self):
        vacuous = "forall x . G (Sub(x) -> (Sub(x) | X Fill(x)))"
        assert self.severities(vacuous) == [("TIC140", "warning")]

    def test_healthy_budget_is_silent(self):
        from repro.workloads import fresh_use, refresh_deadline

        from repro.logic import to_str

        for formula in (fresh_use("price", 2), refresh_deadline("price", 2)):
            assert self.severities(to_str(formula)) == []

    def test_shipped_order_constraints_silent(self):
        from repro.workloads import standard_constraints

        from repro.logic import to_str

        for formula in standard_constraints().values():
            assert self.severities(to_str(formula)) == []

    def test_non_atom_negation_silent(self):
        # G !(compound) is not a staleness ban shape.
        assert self.severities(
            "forall x . G !(Sub(x) & Fill(x))"
        ) == []


class TestLintHierarchyFlag:
    def test_flag_enables_passes(self, capsys):
        assert main(["lint", "--hierarchy", SAFE]) == 0
        out = capsys.readouterr().out
        assert "TIC130" in out and "TIC134" in out

    def test_strict_fails_on_retired_vacuity(self, capsys):
        # A *valid bounded-future* constraint: retirable (TIC132 warns)
        # but still inside the safety fragment, so the default passes
        # raise no error and only --strict fails.
        vacuous = "forall x . Sub(x) | !Sub(x)"
        assert main(["lint", "--hierarchy", vacuous]) == 0
        capsys.readouterr()
        assert main(["lint", "--hierarchy", "--strict", vacuous]) == 1
        assert "TIC132" in capsys.readouterr().out


class TestPlanCommand:
    def write_constraints(self, tmp_path):
        path = tmp_path / "constraints.tic"
        path.write_text(
            "# once: no resubmission\n"
            f"{SAFE}\n"
            "\n"
            "# audit: past audit rule\n"
            f"{PAST}\n"
            "\n"
            "# live: a liveness obligation\n"
            f"{GENERAL}\n"
        )
        return path

    def test_json_document_shape(self, tmp_path, capsys):
        path = self.write_constraints(tmp_path)
        assert main(["plan", str(path)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == PLAN_JSON_VERSION
        assert set(doc) == {"version", "constraints", "plan", "summary"}
        assert list(doc["constraints"]) == ["once", "audit", "live"]
        assert doc["constraints"]["once"]["backend"] == "progression-safety"
        assert doc["constraints"]["audit"]["backend"] == "pasteval"
        assert doc["constraints"]["live"]["backend"] == "progression-full"
        assert doc["summary"]["routed_off_full"] == 2
        assert doc["summary"]["by_class"] == {
            "general": 1, "past-closed": 1, "safety": 1,
        }
        assert doc["summary"]["error"] == 0
        entries = {e["name"]: e for e in doc["plan"]["entries"]}
        assert entries["audit"]["hierarchy"] == "past-closed"

    def test_single_expression_target(self, capsys):
        assert main(["plan", SAFE]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["constraints"] == 1
        assert list(doc["constraints"]) == ["c0"]

    def test_strict_fails_on_warning(self, tmp_path, capsys):
        path = tmp_path / "vacuous.tic"
        path.write_text(f"{VALID_COSAFETY}\n")
        assert main(["plan", str(path)]) == 0
        capsys.readouterr()
        assert main(["plan", "--strict", str(path)]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["warning"] >= 1

    def test_syntax_error_is_usage_error(self, capsys):
        assert main(["plan", "forall x . G ("]) == 2
        assert "syntax error" in capsys.readouterr().err

    def test_missing_file_is_usage_error(self, capsys):
        assert main(["plan", "nope/missing.tic"]) == 2
        assert "not found" in capsys.readouterr().err


class TestClassifyJson:
    def test_hierarchy_block(self, capsys):
        assert main(["classify", "--json", SAFE]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["hierarchy"]["class"] == "safety"
        assert doc["hierarchy"]["backend"] == "progression-safety"
        assert doc["hierarchy"]["lookahead"] is None
        assert doc["hierarchy"]["reason"]
        assert doc["decidable"] is True

    def test_bounded_future_lookahead(self, capsys):
        assert main(
            ["classify", "--json", "forall x . Sub(x) -> X X Fill(x)"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["hierarchy"]["class"] == "bounded-future"
        assert doc["hierarchy"]["lookahead"] == 2

    def test_strict_exit_contract_unchanged(self, capsys):
        assert main(["classify", "--json", "--strict", GENERAL]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["hierarchy"]["class"] == "general"

    def test_text_mode_shows_hierarchy_line(self, capsys):
        assert main(["classify", SAFE]) == 0
        out = capsys.readouterr().out
        assert "temporal hierarchy:" in out
        assert "progression-safety" in out
