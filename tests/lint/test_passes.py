"""Per-pass unit tests: one positive and one negative case per pass."""

import pytest

from repro.database import vocabulary
from repro.lint import Severity, lint_formula, lint_source


def codes(text, **kwargs):
    return lint_source(text, **kwargs).codes()


class TestSentencePass:
    def test_open_formula_flagged(self):
        report = lint_source("G p(x)")
        (diag,) = report.by_code("TIC001")
        assert diag.severity is Severity.ERROR
        assert "x" in diag.message
        assert diag.span is not None

    def test_sentence_clean(self):
        assert "TIC001" not in codes("forall x . G p(x)")

    def test_trigger_mode_allows_free_variables(self):
        assert "TIC001" not in codes("F Sub(x)", mode="trigger")


class TestNonBiquantifiedPass:
    def test_quantifier_over_temporal_flagged(self):
        report = lint_source("forall x . exists y . G q(x, y)")
        (diag,) = report.by_code("TIC002")
        assert diag.severity is Severity.ERROR
        assert diag.paper == "Section 3"
        # The span pinpoints the offending existential, not the prefix.
        assert diag.span.column == 12

    def test_biquantified_clean(self):
        assert "TIC002" not in codes(
            "forall x . G (p(x) -> F (exists y . q(x, y)))"
        )


class TestInternalQuantifierPass:
    def test_sigma1_formula_cites_theorem_3_2(self):
        # The undecidable Sigma_1 shape from Section 3.
        report = lint_source("forall x . G (p(x) -> F (exists y . q(x, y)))")
        (diag,) = report.by_code("TIC003")
        assert diag.severity is Severity.ERROR
        assert diag.paper == "Theorem 3.2"
        assert "Pi^0_2" in diag.message
        assert diag.span is not None
        assert diag.span.column == 26

    def test_internal_universal_also_flagged(self):
        report = lint_source("forall x . G (forall y . q(x, y))")
        (diag,) = report.by_code("TIC003")
        assert "universal" in diag.message

    def test_universal_formula_clean(self, submit_once):
        report = lint_formula(submit_once)
        assert not report.by_code("TIC003")
        assert report.ok


class TestPastInMatrixPass:
    def test_past_matrix_flagged(self):
        report = lint_source("forall x . G (Fill(x) -> Y O Sub(x))")
        (diag,) = report.by_code("TIC004")
        assert diag.severity is Severity.ERROR
        assert "pasteval" in diag.message

    def test_future_only_clean(self):
        assert "TIC004" not in codes("forall x . G (Sub(x) -> X G !Sub(x))")


class TestSafetyPass:
    def test_eventually_pinpointed(self):
        report = lint_source("forall x . G (Sub(x) -> F Fill(x))")
        (diag,) = report.by_code("TIC005")
        assert diag.severity is Severity.ERROR
        assert "'eventually'" in diag.message
        # Span of the 'F Fill(x)' subformula.
        assert diag.span.column == 25

    def test_strong_until_pinpointed(self):
        report = lint_source("forall x . p(x) U q(x)")
        (diag,) = report.by_code("TIC005")
        assert "until" in diag.message

    def test_negated_weak_until_blamed_on_negation(self):
        # No F/U node in the source; NNF manufactures the strong until.
        report = lint_source("!(p W q)")
        (diag,) = report.by_code("TIC005")
        assert "negation normal form" in diag.message

    def test_safety_formula_clean(self, fifo_fill):
        assert lint_formula(fifo_fill).ok

    def test_pure_past_constraint_not_flagged(self):
        # Safety by Proposition 2.1 even though the recognizer is
        # conservative about mixed nodes.
        assert "TIC005" not in codes("forall x . G (Fill(x) -> O Sub(x))")


class TestPastRewritePass:
    def test_g_past_suggests_pasteval(self):
        report = lint_source("forall x . G (Fill(x) -> O Sub(x))")
        (diag,) = report.by_code("TIC006")
        assert diag.severity is Severity.INFO
        assert diag.paper == "Proposition 2.1"
        assert "PastMonitor" in diag.message

    def test_future_constraint_no_suggestion(self, submit_once):
        assert not lint_formula(submit_once).by_code("TIC006")

    def test_g_state_formula_no_suggestion(self):
        # G over a temporal-free body needs no rewrite advice.
        assert "TIC006" not in codes("forall x . G !p(x)")


class TestDomainIndependencePass:
    def test_equality_only_variable_flagged(self):
        report = lint_source("forall x y . G (p(x) | x = y)")
        (diag,) = report.by_code("TIC007")
        assert diag.severity is Severity.WARNING
        assert "'y'" in diag.message

    def test_range_restricted_clean(self, fifo_fill):
        # Both variables occur in relational atoms despite the x != y.
        assert not lint_formula(fifo_fill).by_code("TIC007")


class TestVocabularyPass:
    def test_conflicting_arity_flagged(self):
        report = lint_source("forall x y . G (p(x) -> X p(x, y))")
        (diag,) = report.by_code("TIC008")
        assert diag.severity is Severity.ERROR
        assert "arity" in diag.message

    def test_unknown_predicate_against_vocabulary(self):
        schema = vocabulary({"Sub": 1})
        report = lint_source(
            "forall x . G (Sub(x) -> X Fill(x))", vocabulary=schema
        )
        (diag,) = report.by_code("TIC008")
        assert "'Fill'" in diag.message

    def test_arity_mismatch_against_vocabulary(self):
        schema = vocabulary({"Sub": 2})
        report = lint_source("forall x . G Sub(x)", vocabulary=schema)
        (diag,) = report.by_code("TIC008")
        assert "declared arity 2" in diag.message

    def test_undeclared_constant_against_vocabulary(self):
        schema = vocabulary({"owner": 2})
        report = lint_source(
            "forall x . G owner(x, Alice)", vocabulary=schema
        )
        (diag,) = report.by_code("TIC008")
        assert "'Alice'" in diag.message

    def test_conforming_formula_clean(self):
        schema = vocabulary({"Sub": 1}, constants=("Alice",))
        report = lint_source("forall x . G !Sub(x)", vocabulary=schema)
        assert not report.by_code("TIC008")


class TestTriggerConditionPass:
    def test_analyzable_condition_clean(self):
        # 'F Sub(x)': negation is G !Sub(x), a universal safety sentence
        # after closing the parameter.
        report = lint_source("F Sub(x)", mode="trigger")
        assert not report.by_code("TIC009")

    def test_unanalyzable_condition_flagged(self):
        # Negation of 'G p(x)' is 'F !p(x)' — a liveness obligation.
        report = lint_source("G Sub(x)", mode="trigger")
        (diag,) = report.by_code("TIC009")
        assert diag.severity is Severity.ERROR
        assert "duality" in (diag.paper or "")

    def test_not_run_in_constraint_mode(self):
        assert "TIC009" not in codes("G Sub(x)")


class TestGroundingCostPass:
    def test_small_prefix_is_info(self, submit_once):
        (diag,) = lint_formula(submit_once).by_code("TIC010")
        assert diag.severity is Severity.INFO
        assert "9^1" in diag.message

    def test_large_prefix_escalates_to_warning(self):
        report = lint_source(
            "forall x y z w . G (p(x, y) -> X !p(z, w))", domain_size=12
        )
        (diag,) = report.by_code("TIC010")
        assert diag.severity is Severity.WARNING
        assert "16^4" in diag.message

    def test_quantifier_free_constraint_silent(self):
        assert "TIC010" not in codes("G (p -> X q)")


class TestVacuousQuantifierPass:
    def test_unused_variable_flagged(self):
        report = lint_source("forall x y . G !Sub(x)")
        (diag,) = report.by_code("TIC011")
        assert diag.severity is Severity.WARNING
        assert "'forall y'" in diag.message

    def test_used_variables_clean(self, fifo_fill):
        assert not lint_formula(fifo_fill).by_code("TIC011")


class TestAcceptance:
    """The ISSUE acceptance scenario in one place."""

    def test_sigma1_formula_full_report(self):
        report = lint_source(
            "forall x . G (p(x) -> F (exists y . q(x, y)))"
        )
        assert not report.ok
        tic003 = report.by_code("TIC003")
        assert tic003 and tic003[0].span is not None
        assert tic003[0].paper == "Theorem 3.2"

    @pytest.mark.parametrize(
        "text",
        [
            "forall x . G (Sub(x) -> X G !Sub(x))",
            "forall x y . G !(x != y & Sub(x) & ((!Fill(x)) U "
            "(Sub(y) & ((!Fill(x)) U (Fill(y) & !Fill(x))))))",
        ],
    )
    def test_paper_examples_have_no_errors(self, text):
        assert lint_source(text).ok
