"""The pre-flight gate: Monitor / TriggerManager / checker integration."""

import warnings

import pytest

from repro.core.checker import check_extension, validate_constraint
from repro.core.monitor import IntegrityMonitor
from repro.core.triggers import Trigger, TriggerManager
from repro.database import History
from repro.errors import LintError, NotSafetyError
from repro.lint import GATE_MODES, LintWarning, preflight
from repro.logic import parse

LIVENESS = "forall x . G (Sub(x) -> F Fill(x))"
SIGMA1 = "forall x . G (Sub(x) -> F (exists y . Fill(y)))"


class TestPreflightFunction:
    def test_off_returns_empty_report(self):
        report = preflight(parse(LIVENESS), gate="off")
        assert report.diagnostics == ()

    def test_unknown_gate_rejected(self, submit_once):
        with pytest.raises(ValueError, match="gate"):
            preflight(submit_once, gate="everything-goes")
        assert set(GATE_MODES) == {"off", "warn", "strict"}

    def test_strict_raises_with_diagnostics(self):
        with pytest.raises(LintError) as excinfo:
            preflight(parse(SIGMA1), gate="strict")
        diagnostics = excinfo.value.diagnostics
        assert any(d.code == "TIC003" for d in diagnostics)
        assert "Theorem 3.2" in str(excinfo.value)

    def test_strict_passes_clean_constraint(self, submit_once):
        report = preflight(submit_once, gate="strict")
        assert report.ok

    def test_warn_emits_lint_warnings(self):
        vacuous = parse("forall x y . G !Sub(x)")
        with pytest.warns(LintWarning, match="vacuous"):
            preflight(vacuous, gate="warn")

    def test_warn_does_not_raise_on_errors(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            report = preflight(parse(LIVENESS), gate="warn")
        assert not report.ok

    def test_assume_safety_suppresses_tic005(self):
        formula = parse(LIVENESS)
        with pytest.raises(LintError):
            preflight(formula, gate="strict")
        report = preflight(formula, gate="strict", assume_safety=True)
        assert [d.code for d in report.errors] == ["TIC005"]

    def test_assume_safety_keeps_other_errors(self):
        with pytest.raises(LintError) as excinfo:
            preflight(parse(SIGMA1), gate="strict", assume_safety=True)
        codes = {d.code for d in excinfo.value.diagnostics}
        assert "TIC003" in codes and "TIC005" not in codes

    def test_memoized_report_reused(self, submit_once):
        first = preflight(submit_once, gate="warn")
        second = preflight(submit_once, gate="warn")
        assert first is second

    def test_vocabulary_aware_reports_cached(self, submit_once):
        from repro.lint import cache_info
        from repro.workloads import ORDER_VOCABULARY

        first = preflight(
            submit_once, gate="warn", vocabulary=ORDER_VOCABULARY
        )
        hits = cache_info().hits
        second = preflight(
            submit_once, gate="warn", vocabulary=ORDER_VOCABULARY
        )
        assert first is second
        assert cache_info().hits == hits + 1

    def test_cache_info_exposed(self):
        from repro.lint import cache_info

        info = cache_info()
        assert info.maxsize == 1024
        assert info.hits >= 0

    def test_semantic_gate_catches_unsatisfiable(self):
        with pytest.raises(LintError) as excinfo:
            preflight(
                parse("forall x . G Sub(x)"),
                gate="strict",
                semantic=True,
            )
        codes = {d.code for d in excinfo.value.diagnostics}
        assert "TIC100" in codes

    def test_semantic_gate_off_by_default(self, submit_once):
        report = preflight(parse("forall x . G Sub(x)"), gate="warn")
        assert "TIC100" not in {d.code for d in report.diagnostics}


class TestMonitorGate:
    def test_strict_monitor_rejects_non_safety(self, order_vocabulary):
        constraint = parse("forall x . G (Sub(x) -> F Fill(x))")
        with pytest.raises(LintError) as excinfo:
            IntegrityMonitor(
                {"fill": constraint},
                History.empty(order_vocabulary),
                lint="strict",
            )
        assert any(d.code == "TIC005" for d in excinfo.value.diagnostics)

    def test_default_monitor_still_raises_legacy_error(
        self, order_vocabulary
    ):
        # lint="warn" keeps the historical first-failure behavior: the
        # legacy safety check still runs (and raises its legacy type).
        constraint = parse("forall x . G (Sub(x) -> F Fill(x))")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with pytest.raises(NotSafetyError):
                IntegrityMonitor(
                    {"fill": constraint}, History.empty(order_vocabulary)
                )

    def test_clean_constraint_constructs_in_strict_mode(
        self, submit_once, order_vocabulary
    ):
        monitor = IntegrityMonitor(
            {"once": submit_once},
            History.empty(order_vocabulary),
            lint="strict",
        )
        assert monitor.violations() == {}

    def test_off_skips_gate(self, submit_once, order_vocabulary):
        monitor = IntegrityMonitor(
            {"once": submit_once},
            History.empty(order_vocabulary),
            lint="off",
        )
        assert monitor.violations() == {}


class TestCheckerGate:
    def test_check_extension_strict(self, clean_history):
        with pytest.raises(LintError):
            check_extension(
                parse(SIGMA1), clean_history, lint="strict"
            )

    def test_validate_constraint_strict(self):
        with pytest.raises(LintError):
            validate_constraint(parse(SIGMA1), lint="strict")

    def test_default_unchanged(self, submit_once, clean_history):
        # lint defaults to "off" on the functional API: no warnings, no
        # behavior change for existing callers.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = check_extension(submit_once, clean_history)
        assert result.potentially_satisfied


class TestTriggerGate:
    def test_strict_rejects_unanalyzable_condition(self):
        bad = Trigger("bad", parse("G Sub(x)"))
        with pytest.raises(LintError) as excinfo:
            TriggerManager([bad], lint="strict")
        assert any(d.code == "TIC009" for d in excinfo.value.diagnostics)

    def test_strict_accepts_supported_condition(self):
        good = Trigger("resub", parse("F (Sub(x) & X F Sub(x))"))
        manager = TriggerManager([good], lint="strict")
        assert manager.log == []

    def test_off_skips_gate(self):
        bad = Trigger("bad", parse("G Sub(x)"))
        manager = TriggerManager([bad], lint="off")
        assert manager.log == []
