"""Tests for the TIC100+ semantic lint passes (repro.lint.semantic)."""

import pytest

from repro.lint import (
    SEMANTIC_PASS_REGISTRY,
    lint_constraint_set,
    lint_formula,
    lint_trigger_conditions,
    semantic_passes,
)
from repro.lint.setanalysis import SetAnalyzer
from repro.logic import is_syntactically_safe, parse
from repro.workloads import (
    ORDER_VOCABULARY,
    ConstraintConfig,
    no_fill_before_submit,
    random_universal_constraint,
    standard_constraints,
)


def codes(report):
    return [d.code for d in report.diagnostics]


def semantic_codes(report):
    return [c for c in codes(report) if c.startswith("TIC1")]


def lint_semantic(text, **kwargs):
    return lint_formula(parse(text), semantic=True, **kwargs)


class TestRegistry:
    def test_semantic_passes_registered(self):
        passes = semantic_passes()
        declared = {code for p in passes for code in p.codes}
        assert {
            "TIC100",
            "TIC101",
            "TIC102",
            "TIC103",
            "TIC110",
            "TIC111",
            "TIC112",
        } <= declared

    def test_disjoint_from_syntactic_registry(self):
        from repro.lint import PASS_REGISTRY

        assert not set(PASS_REGISTRY) & set(SEMANTIC_PASS_REGISTRY)

    def test_semantic_off_by_default(self):
        report = lint_formula(parse("forall x . G Sub(x)"))
        assert not semantic_codes(report)


class TestPerFormulaPasses:
    def test_tic100_unsatisfiable(self):
        report = lint_semantic("forall x . G Sub(x)")
        assert "TIC100" in codes(report)
        assert not report.ok

    def test_tic100_suppresses_tic101_and_tic110(self):
        report = lint_semantic("forall x . G (Sub(x) & !Sub(x))")
        assert "TIC100" in codes(report)
        assert "TIC101" not in codes(report)

    def test_tic101_valid(self):
        report = lint_semantic("forall x . G (Sub(x) | !Sub(x))")
        assert "TIC101" in codes(report)

    def test_tic102_semantically_safe_info(self):
        # F under G, but semantically equivalent to the safety G Sub(x).
        report = lint_semantic("forall x . G (Sub(x) & F Sub(x))")
        info = [d for d in report.diagnostics if d.code == "TIC102"]
        assert len(info) == 1
        assert info[0].severity.name == "INFO"
        assert "assume_safety" in info[0].message

    def test_tic102_silent_on_agreement(self):
        for text in (
            "forall x . G (Sub(x) -> X G !Sub(x))",  # safe both ways
            "forall x . G (Sub(x) -> F Fill(x))",  # unsafe both ways
        ):
            assert "TIC102" not in codes(lint_semantic(text))

    def test_tic103_antecedent_vacuity(self):
        report = lint_semantic(
            "forall x . G ((Sub(x) & !Sub(x)) -> Fill(x))"
        )
        found = [d for d in report.diagnostics if d.code == "TIC103"]
        assert len(found) == 1
        assert "antecedent" in found[0].message

    def test_tic103_consequent_vacuity(self):
        report = lint_semantic(
            "forall x . G (Fill(x) -> (Sub(x) | !Sub(x)))"
        )
        found = [d for d in report.diagnostics if d.code == "TIC103"]
        assert len(found) == 1
        assert "consequent" in found[0].message

    def test_tic103_silent_on_contentful_implication(self):
        report = lint_semantic("forall x . G (Fill(x) -> Sub(x))")
        assert "TIC103" not in codes(report)

    def test_shipped_constraints_clean(self):
        constraints = dict(standard_constraints())
        constraints["no_fill_before_submit"] = no_fill_before_submit()
        for name, formula in constraints.items():
            report = lint_formula(formula, semantic=True)
            assert not semantic_codes(report), name


class TestSetPasses:
    def seeded(self):
        base = list(standard_constraints().items())
        return base + [
            ("fill_once_weak", parse("forall x . G (Fill(x) -> X !Fill(x))")),
            ("always_submitted", parse("forall x . G Sub(x)")),
        ]

    def test_clean_set_silent(self):
        reports = lint_constraint_set(standard_constraints())
        assert all(report.ok for report in reports)
        assert not any(semantic_codes(r) for r in reports)

    def test_seeded_set_fires_tic110_and_tic100(self):
        named = self.seeded()
        reports = lint_constraint_set(named)
        by_name = {name: rep for (name, _f), rep in zip(named, reports)}
        weak = by_name["fill_once_weak"]
        assert "TIC110" in codes(weak)
        (redundancy,) = [
            d for d in weak.diagnostics if d.code == "TIC110"
        ]
        assert "fill_once" in redundancy.message
        assert "TIC100" in codes(by_name["always_submitted"])
        # The healthy constraints stay silent.
        for name in standard_constraints():
            assert not semantic_codes(by_name[name]), name

    def test_redundancy_not_reported_for_unsat_subsumer(self):
        # An unsatisfiable constraint entails everything; that must not
        # flood the set with TIC110.
        reports = lint_constraint_set(
            [
                ("broken", parse("forall x . G (Sub(x) & !Sub(x))")),
                ("fine", parse("forall x . G (Fill(x) -> X !Fill(x))")),
            ]
        )
        assert "TIC110" not in codes(reports[1])

    def test_equivalence_reported_once_on_later(self):
        reports = lint_constraint_set(
            [
                ("first", parse("forall x . G !Sub(x)")),
                ("second", parse("forall x . G (!Sub(x) & !Sub(x))")),
            ]
        )
        assert "TIC110" not in codes(reports[0])
        (equivalence,) = [
            d for d in reports[1].diagnostics if d.code == "TIC110"
        ]
        assert "equivalent" in equivalence.message
        assert "first" in equivalence.message

    def test_tic111_pairwise(self):
        reports = lint_constraint_set(
            [("yes", parse("G Sub(Ann)")), ("no", parse("G !Sub(Ann)"))]
        )
        for report, other in zip(reports, ("no", "yes")):
            (conflict,) = [
                d for d in report.diagnostics if d.code == "TIC111"
            ]
            assert other in conflict.message

    def test_tic111_whole_set_without_guilty_pair(self):
        reports = lint_constraint_set(
            [
                ("a_or_b", parse("G (Sub(Ann) | Sub(Bob))")),
                ("not_a", parse("G !Sub(Ann)")),
                ("not_b", parse("G !Sub(Bob)")),
            ]
        )
        whole_set = [
            d for d in reports[0].diagnostics if d.code == "TIC111"
        ]
        assert len(whole_set) == 1
        assert "no single pair" in whole_set[0].message
        assert "TIC111" not in codes(reports[1])
        assert "TIC111" not in codes(reports[2])

    def test_serial_matches_parallel(self):
        named = self.seeded()
        serial = lint_constraint_set(named, jobs=1)
        parallel = lint_constraint_set(named, jobs=4)
        assert [r.to_dict() for r in serial] == [
            r.to_dict() for r in parallel
        ]

    def test_bitset_matches_reference(self):
        named = [
            ("weak", parse("forall x . G (Fill(x) -> X !Fill(x))")),
            ("strong", parse("forall x . G (Fill(x) -> X G !Fill(x))")),
        ]
        bitset = lint_constraint_set(named, engine="bitset")
        reference = lint_constraint_set(named, engine="reference")
        assert [semantic_codes(r) for r in bitset] == [
            semantic_codes(r) for r in reference
        ]


class TestTriggerPasses:
    def test_tic100_never_firing_condition(self):
        (report,) = lint_trigger_conditions(
            [("never", parse("Sub(x) & !Sub(x)"))]
        )
        (diag,) = [d for d in report.diagnostics if d.code == "TIC100"]
        assert "never fire" in diag.message

    def test_tic112_condition_vs_constraint(self):
        (report,) = lint_trigger_conditions(
            [("fill_seen", parse("Fill(x)"))],
            [("never_fill", parse("forall x . G !Fill(x)"))],
        )
        (diag,) = [d for d in report.diagnostics if d.code == "TIC112"]
        assert "never_fill" in diag.message

    def test_tic112_silent_on_compatible_condition(self):
        (report,) = lint_trigger_conditions(
            [("fill_seen", parse("Fill(x)"))],
            list(standard_constraints().items()),
        )
        assert "TIC112" not in codes(report)

    def test_equality_condition_not_flagged(self):
        (report,) = lint_trigger_conditions(
            [("same", parse("Sub(x) & x = y"))],
            list(standard_constraints().items()),
        )
        assert not semantic_codes(report)


class TestSafetyCorpusCrossValidation:
    """Acceptance criterion: the semantic safety verdict agrees with the
    syntactic classifier on the safety corpus — syntactically-safe
    constraints must be semantically instance-safe (the recognizer is
    sound), and TIC102 never fires at ERROR severity on them."""

    SEEDS = range(40)

    def corpus(self):
        for seed in self.SEEDS:
            yield random_universal_constraint(
                ORDER_VOCABULARY,
                ConstraintConfig(quantifiers=1, size=5, seed=seed),
            )

    def test_syntactic_safe_implies_semantic_safe(self):
        checked = 0
        for formula in self.corpus():
            assert is_syntactically_safe(formula)
            analyzer = SetAnalyzer(constraints=[("c", formula)])
            verdict = analyzer.instance_safety(0)
            if verdict is None:
                continue  # size guard; not a disagreement
            checked += 1
            assert verdict is True, formula
        assert checked >= 20

    def test_no_tic102_error_on_corpus(self):
        for formula in self.corpus():
            report = lint_formula(formula, semantic=True)
            errors = [
                d
                for d in report.diagnostics
                if d.code == "TIC102" and d.severity.name == "ERROR"
            ]
            assert not errors, formula

    @pytest.mark.parametrize(
        "text",
        [
            "forall x . G (Sub(x) -> X G !Sub(x))",
            "forall x y . G !(x != y & Sub(x) & ((!Fill(x)) U "
            "(Sub(y) & ((!Fill(x)) U (Fill(y) & !Fill(x))))))",
            "forall x . G !Sub(x)",
            "forall x . G (Sub(x) -> (Fill(x) W Sub(x)))",
        ],
    )
    def test_deterministic_corpus_agreement(self, text):
        formula = parse(text)
        assert is_syntactically_safe(formula)
        analyzer = SetAnalyzer(constraints=[("c", formula)])
        assert analyzer.instance_safety(0) is True
