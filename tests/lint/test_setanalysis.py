"""Tests for the grounded semantic decision layer (repro.lint.setanalysis)."""

import pytest

from repro.lint.setanalysis import SetAnalyzer, analysis_cache_clear
from repro.logic import parse
from repro.workloads import (
    ORDER_VOCABULARY,
    ConstraintConfig,
    random_universal_constraint,
    standard_constraints,
)


def analyzer_for(*texts, **kwargs):
    return SetAnalyzer(
        constraints=[(f"c{i}", parse(t)) for i, t in enumerate(texts)],
        **kwargs,
    )


class TestEligibility:
    def test_standard_constraints_eligible(self):
        analyzer = SetAnalyzer(
            constraints=list(standard_constraints().items())
        )
        assert all(p.eligible for p in analyzer.constraints)

    def test_past_rejected(self):
        analyzer = analyzer_for("forall x . G (Fill(x) -> Y O Sub(x))")
        profile = analyzer.constraints[0]
        assert not profile.eligible
        assert "past" in profile.reason

    def test_internal_quantifier_rejected(self):
        analyzer = analyzer_for("forall x . G (exists y . Fill(y))")
        assert not analyzer.constraints[0].eligible

    def test_free_variable_constraint_rejected(self):
        analyzer = analyzer_for("G Sub(x)")
        profile = analyzer.constraints[0]
        assert not profile.eligible
        assert "sentence" in profile.reason

    def test_extended_vocabulary_rejected(self):
        analyzer = analyzer_for("forall x y . G !(leq(x, y) & Sub(x))")
        assert not analyzer.constraints[0].eligible

    def test_ineligible_verdicts_are_none(self):
        analyzer = analyzer_for("forall x . G (Fill(x) -> Y O Sub(x))")
        assert analyzer.is_unsatisfiable(0) is None
        assert analyzer.is_valid(0) is None
        assert analyzer.instance_safety(0) is None

    def test_bad_engine_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            analyzer_for("G p", engine="nope")


class TestPerFormulaVerdicts:
    def test_unsatisfiable_universal(self):
        # G Sub(x) for *all* x: states are finite, the universe is not.
        analyzer = analyzer_for("forall x . G Sub(x)")
        assert analyzer.is_unsatisfiable(0) is True

    def test_satisfiable_constraint(self):
        analyzer = analyzer_for("forall x . G (Sub(x) -> X G !Sub(x))")
        assert analyzer.is_unsatisfiable(0) is False
        assert analyzer.is_valid(0) is False

    def test_valid_constraint(self):
        analyzer = analyzer_for("forall x . G (Sub(x) | !Sub(x))")
        assert analyzer.is_valid(0) is True
        assert analyzer.is_unsatisfiable(0) is False

    def test_liveness_gate_blocks_unsat_verdict(self):
        # The grounding of 'forall x . F Sub(x)' is propositionally unsat
        # (the anonymous instance folds to F false) but the diagonal
        # database satisfies the formula — the safety gate must refuse.
        analyzer = analyzer_for("forall x . F Sub(x)")
        assert analyzer.instance_safety(0) is False
        assert analyzer.is_unsatisfiable(0) is None

    def test_validity_needs_no_gate(self):
        # Valid despite the liveness shape: F(p | !p) via G-dual... use a
        # propositionally valid matrix under F.
        analyzer = analyzer_for("forall x . F (Sub(x) | !Sub(x))")
        assert analyzer.is_valid(0) is True

    def test_instance_safety_of_standard_set(self):
        analyzer = SetAnalyzer(
            constraints=list(standard_constraints().items())
        )
        for index in range(len(analyzer.constraints)):
            assert analyzer.instance_safety(index) is True


class TestSetVerdicts:
    def test_known_entailment(self):
        analyzer = analyzer_for(
            "forall x . G (Fill(x) -> X G !Fill(x))",
            "forall x . G (Fill(x) -> X !Fill(x))",
        )
        assert analyzer.entails(0, 1) is True
        assert analyzer.entails(1, 0) is False

    def test_no_spurious_entailments_in_standard_set(self):
        analyzer = SetAnalyzer(
            constraints=list(standard_constraints().items())
        )
        verdicts = analyzer.sweep()
        assert all(value is False for value in verdicts.values())

    def test_constant_conflict(self):
        analyzer = analyzer_for("G Sub(Ann)", "G !Sub(Ann)")
        assert analyzer.conflicts(0, 1) is True
        assert analyzer.is_unsatisfiable(0) is False
        assert analyzer.is_unsatisfiable(1) is False

    def test_conflicts_symmetric_lookup(self):
        analyzer = analyzer_for("G Sub(Ann)", "G !Sub(Ann)")
        assert analyzer.conflicts(1, 0) is True

    def test_joint_unsat_without_pair_conflict(self):
        analyzer = analyzer_for(
            "G (Sub(Ann) | Sub(Bob))",
            "G !Sub(Ann)",
            "G !Sub(Bob)",
        )
        for left in range(3):
            for right in range(left + 1, 3):
                assert analyzer.conflicts(left, right) is False
        assert analyzer.jointly_unsatisfiable() is True
        assert analyzer.jointly_unsatisfiable([1, 2]) is False

    def test_empty_set_jointly_satisfiable(self):
        analyzer = SetAnalyzer()
        assert analyzer.jointly_unsatisfiable() is False


class TestConditions:
    def constraints(self):
        return [("never_fill", parse("forall x . G !Fill(x)"))]

    def test_condition_conflict(self):
        analyzer = SetAnalyzer(
            constraints=self.constraints(),
            conditions=[("fill_seen", parse("Fill(x)"))],
        )
        assert analyzer.condition_conflicts(0, 0) is True

    def test_equality_condition_not_false_positive(self):
        # x = y is satisfiable by *repeating* an element; a naive
        # distinct-elements instantiation would call it never-firing.
        analyzer = SetAnalyzer(
            constraints=self.constraints(),
            conditions=[("same", parse("Sub(x) & x = y"))],
        )
        assert analyzer.is_unsatisfiable(0, "condition") is False

    def test_unsatisfiable_condition(self):
        analyzer = SetAnalyzer(
            conditions=[("never", parse("Sub(x) & !Sub(x)"))]
        )
        assert analyzer.is_unsatisfiable(0, "condition") is True

    def test_joint_condition_conflict(self):
        analyzer = SetAnalyzer(
            constraints=[
                ("a_or_b", parse("G (Sub(Ann) | Sub(Bob))")),
                ("not_a", parse("G !Sub(Ann)")),
            ],
            conditions=[("no_b", parse("G !Sub(Bob)"))],
        )
        assert analyzer.condition_conflicts(0, 0) is False
        assert analyzer.condition_conflicts(0, 1) is False
        assert analyzer.condition_conflicts_jointly(0) is True


class TestSubformulaQueries:
    def test_somewhere_satisfiable(self):
        analyzer = analyzer_for("forall x . G (Sub(x) -> Fill(x))")
        antecedent = parse("Sub(x)")
        assert analyzer.somewhere_satisfiable(0, antecedent) is True
        impossible = parse("Sub(x) & !Sub(x)")
        assert analyzer.somewhere_satisfiable(0, impossible) is False

    def test_always_valid(self):
        analyzer = analyzer_for("forall x . G (Fill(x) -> Fill(x))")
        tautology = parse("Fill(x) | !Fill(x)")
        assert analyzer.always_valid(0, tautology) is True
        assert analyzer.always_valid(0, parse("Fill(x)")) is False


class TestEnginesAndJobs:
    CORPUS_SEEDS = range(12)

    def corpus(self):
        return [
            (
                f"r{seed}",
                random_universal_constraint(
                    ORDER_VOCABULARY,
                    ConstraintConfig(quantifiers=1, size=4, seed=seed),
                ),
            )
            for seed in self.CORPUS_SEEDS
        ]

    def test_bitset_matches_reference(self):
        corpus = self.corpus()[:4]
        bitset = SetAnalyzer(constraints=corpus, engine="bitset")
        reference = SetAnalyzer(constraints=corpus, engine="reference")
        assert dict(bitset.sweep()) == dict(reference.sweep())
        for index in range(len(corpus)):
            assert bitset.is_unsatisfiable(index) == (
                reference.is_unsatisfiable(index)
            )
            assert bitset.is_valid(index) == reference.is_valid(index)

    def test_sweep_serial_matches_parallel(self):
        corpus = self.corpus()
        serial = SetAnalyzer(constraints=corpus, jobs=1)
        parallel = SetAnalyzer(constraints=corpus, jobs=4)
        assert dict(serial.sweep()) == dict(parallel.sweep())

    def test_sweep_jobs_override(self):
        corpus = self.corpus()[:4]
        analyzer = SetAnalyzer(constraints=corpus)
        assert dict(analyzer.sweep(jobs=4)) == dict(
            SetAnalyzer(constraints=corpus).sweep(jobs=1)
        )


class TestMemoAndStats:
    def test_sweep_cached(self):
        analyzer = SetAnalyzer(
            constraints=list(standard_constraints().items())
        )
        first = analyzer.sweep()
        assert analyzer.sweep() is first

    def test_repeated_verdict_hits_memo(self):
        analyzer = analyzer_for("forall x . G Sub(x)")
        analyzer.is_unsatisfiable(0)
        before = analyzer.stats()["memo_hits"]
        analyzer.is_unsatisfiable(0)
        assert analyzer.stats()["memo_hits"] == before + 1

    def test_stats_keys(self):
        analyzer = analyzer_for("forall x . G Sub(x)")
        analyzer.is_unsatisfiable(0)
        stats = analyzer.stats()
        assert stats["decisions"] >= 1
        assert "kernel_states" in stats

    def test_analysis_cache_clear(self):
        analyzer = analyzer_for("forall x . G Sub(x)")
        analyzer.instance_safety(0)
        assert analyzer.stats()["safety_checks"] > 0
        analysis_cache_clear()
        assert analyzer.stats()["safety_checks"] == 0
