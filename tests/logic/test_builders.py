"""Tests for the smart constructors (repro.logic.builders)."""

import pytest

from repro.logic import (
    FALSE,
    TRUE,
    And,
    Constant,
    Eventually,
    Forall,
    Not,
    Or,
    Variable,
    and_,
    atom,
    conj,
    disj,
    eq,
    eventually,
    forall,
    iff,
    implies,
    neq,
    not_,
    or_,
    var,
)
from repro.logic.builders import _as_term

x, y = var("x"), var("y")
p, q, r = atom("p"), atom("q"), atom("r")


class TestTermCoercion:
    def test_lowercase_string_is_variable(self):
        assert _as_term("order") == Variable("order")

    def test_capitalized_string_is_constant(self):
        assert _as_term("Vip") == Constant("Vip")

    def test_underscore_is_variable(self):
        assert _as_term("_x") == Variable("_x")

    def test_int_becomes_named_constant(self):
        assert _as_term(5) == Constant("n5")

    def test_negative_int_rejected(self):
        with pytest.raises(ValueError):
            _as_term(-1)

    def test_term_passthrough(self):
        assert _as_term(x) is x


class TestNot:
    def test_double_negation_cancels(self):
        assert not_(not_(p)) == p

    def test_constants_fold(self):
        assert not_(TRUE) == FALSE
        assert not_(FALSE) == TRUE

    def test_plain_negation(self):
        assert not_(p) == Not(p)


class TestAndOr:
    def test_and_flattens(self):
        f = and_(and_(p, q), r)
        assert isinstance(f, And)
        assert f.operands == (p, q, r)

    def test_and_drops_true(self):
        assert and_(p, TRUE, q) == and_(p, q)

    def test_and_short_circuits_false(self):
        assert and_(p, FALSE, q) == FALSE

    def test_and_empty_is_true(self):
        assert and_() == TRUE

    def test_and_single_passthrough(self):
        assert and_(p) == p

    def test_or_flattens_and_folds(self):
        assert or_(or_(p, q), FALSE) == or_(p, q)
        assert or_(p, TRUE) == TRUE
        assert or_() == FALSE

    def test_conj_disj_iterables(self):
        assert conj([p, q]) == and_(p, q)
        assert disj([p, q]) == or_(p, q)


class TestImplies:
    def test_true_antecedent(self):
        assert implies(TRUE, p) == p

    def test_false_antecedent(self):
        assert implies(FALSE, p) == TRUE

    def test_false_consequent_negates(self):
        assert implies(p, FALSE) == Not(p)

    def test_true_consequent(self):
        assert implies(p, TRUE) == TRUE


class TestQuantifiers:
    def test_forall_multiple(self):
        f = forall((x, y), p)
        assert isinstance(f, Forall)
        assert f.var == x
        assert isinstance(f.body, Forall)
        assert f.body.var == y

    def test_forall_single_variable(self):
        f = forall(x, p)
        assert isinstance(f, Forall)


class TestDerived:
    def test_neq(self):
        assert neq(x, y) == not_(eq(x, y))

    def test_eventually_and_always_nodes(self):
        assert isinstance(eventually(p), Eventually)
        assert isinstance(iff(p, q).children, tuple)
