"""Tests for the formula taxonomy (repro.logic.classify)."""

import pytest

from repro.errors import NotUniversalError
from repro.logic import (
    classify,
    is_future_formula,
    is_past_formula,
    is_pure_first_order,
    is_quantifier_free,
    parse,
    quantifier_count,
    require_universal,
    sigma_pi_level,
    uses_future,
    uses_past,
)
from repro.logic.classify import fo_islands


class TestTenseDirection:
    def test_pure_first_order(self):
        f = parse("forall x . p(x) -> q(x)")
        assert is_pure_first_order(f)
        assert is_future_formula(f) and is_past_formula(f)

    def test_future_only(self):
        f = parse("G (p -> X q)")
        assert uses_future(f) and not uses_past(f)
        assert is_future_formula(f) and not is_past_formula(f)

    def test_past_only(self):
        f = parse("H (p -> Y q)")
        assert uses_past(f) and not uses_future(f)

    def test_mixed(self):
        f = parse("G (p -> O q)")
        assert uses_past(f) and uses_future(f)


class TestSigmaPi:
    def test_quantifier_free_is_level_zero(self):
        assert sigma_pi_level(parse("p(x) & !q(y)")) == (0, 0)

    def test_single_existential_block(self):
        sigma, pi = sigma_pi_level(parse("exists x y . p(x, y)"))
        assert sigma == 1 and pi == 2

    def test_single_universal_block(self):
        sigma, pi = sigma_pi_level(parse("forall x . p(x)"))
        assert pi == 1 and sigma == 2

    def test_forall_exists_alternation(self):
        sigma, pi = sigma_pi_level(parse("forall x . exists y . p(x, y)"))
        assert pi == 2

    def test_negation_flips(self):
        sigma, pi = sigma_pi_level(parse("!(exists x . p(x))"))
        assert pi == 1

    def test_temporal_rejected(self):
        with pytest.raises(ValueError):
            sigma_pi_level(parse("G p"))


class TestClassify:
    def test_paper_example_one_universal(self, submit_once):
        info = classify(submit_once)
        assert info.is_biquantified
        assert info.is_universal
        assert info.internal_quantifiers == 0
        assert len(info.external_universals) == 1

    def test_paper_example_two_universal(self, fifo_fill):
        info = classify(fifo_fill)
        assert info.is_universal
        assert len(info.external_universals) == 2

    def test_internal_existential_is_sigma1(self):
        f = parse("forall x . G (p(x) -> F (exists y . q(x, y)))")
        info = classify(f)
        assert info.is_biquantified
        assert not info.is_universal
        assert info.internal_quantifiers == 1
        assert info.internal_sigma_level == 1

    def test_internal_universal_also_level_one(self):
        f = parse("forall x . G (forall y . q(x, y))")
        info = classify(f)
        assert info.is_biquantified
        assert info.internal_sigma_level == 1

    def test_quantifier_under_temporal_not_biquantified(self):
        # The quantifier has a temporal operator in its scope.
        f = parse("forall x . exists y . G q(x, y)")
        info = classify(f)
        assert not info.is_biquantified

    def test_pure_fo_info(self):
        info = classify(parse("forall x . p(x)"))
        assert info.is_pure_first_order
        assert info.is_universal

    def test_fo_islands_are_maximal(self):
        # The whole conjunction is temporal-free, hence a single island.
        f = parse("G ((exists y . p(y)) & q(x))")
        assert len(fo_islands(f)) == 1

    def test_fo_islands_split_by_temporal(self):
        f = parse("G ((exists y . p(y)) & X q(x))")
        islands = fo_islands(f)
        assert len(islands) == 2


class TestRequireUniversal:
    def test_accepts_universal(self, submit_once):
        info = require_universal(submit_once)
        assert info.is_universal

    def test_rejects_open_formula(self):
        with pytest.raises(NotUniversalError, match="sentence"):
            require_universal(parse("G p(x)"))

    def test_rejects_internal_quantifier(self):
        with pytest.raises(NotUniversalError, match="internal"):
            require_universal(parse("forall x . G (exists y . q(x, y))"))

    def test_rejects_non_biquantified(self):
        with pytest.raises(NotUniversalError, match="biquantified"):
            require_universal(parse("exists y . G q(y)"))

    def test_error_mentions_undecidability(self):
        with pytest.raises(NotUniversalError, match="Pi\\^0_2"):
            require_universal(parse("forall x . G (exists y . q(x, y))"))


class TestQuantifierCount:
    def test_counts_all(self):
        assert quantifier_count(parse("forall x . exists y . p(x, y)")) == 2
        assert quantifier_count(parse("p & q")) == 0

    def test_quantifier_free(self):
        assert is_quantifier_free(parse("p U q"))
        assert not is_quantifier_free(parse("exists x . p(x)"))


class TestClassifyEdgeCases:
    def test_quantifier_in_past_island_not_biquantified(self):
        # Past connectives exclude a matrix from the biquantified classes
        # (Section 2 composes predicate logic with the *future* fragment)
        # even when every quantifier has a pure first-order scope.
        info = classify(parse("forall x . H (exists y . q(x, y))"))
        assert not info.is_biquantified
        assert not info.is_universal
        assert info.internal_sigma_level == -1
        assert info.has_past and not info.has_future

    def test_past_under_future_not_biquantified(self):
        info = classify(parse("forall x . G (Fill(x) -> O Sub(x))"))
        assert not info.is_biquantified
        assert info.has_past and info.has_future

    def test_vacuous_external_quantifier_stays_universal(self):
        info = classify(parse("forall x . G p"))
        assert info.is_universal
        assert [v.name for v in info.external_universals] == ["x"]

    def test_vacuous_internal_quantifier_counts(self):
        info = classify(parse("forall x . G (exists y . p(x))"))
        assert info.is_biquantified and not info.is_universal
        assert info.internal_quantifiers == 1
        assert info.internal_sigma_level == 1

    def test_nested_alternation_is_level_two(self):
        info = classify(
            parse("forall x . G (forall y . exists z . r(y, z))")
        )
        assert info.is_biquantified
        assert info.internal_quantifiers == 2
        assert info.internal_sigma_level == 2

    def test_exists_prefix_is_not_external(self):
        info = classify(parse("exists x . G p(x)"))
        assert info.external_universals == ()
        assert not info.is_biquantified

    def test_prefix_stops_at_first_non_forall(self):
        info = classify(parse("forall x . !(exists y . G q(x, y))"))
        assert [v.name for v in info.external_universals] == ["x"]
        assert not info.is_biquantified
