"""Tests for the FOTL abstract syntax (repro.logic.formulas)."""

import pytest

from repro.logic import (
    FALSE,
    TRUE,
    And,
    Atom,
    Eq,
    Exists,
    Not,
    Or,
    Until,
    atom,
    eq,
    exists,
    forall,
    next_,
    not_,
    until,
    var,
)

x, y = var("x"), var("y")


class TestConstruction:
    def test_atom_requires_terms(self):
        with pytest.raises(TypeError):
            Atom("p", ("not a term",))

    def test_atom_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Atom("", ())

    def test_and_requires_two_operands(self):
        with pytest.raises(ValueError):
            And((atom("p"),))

    def test_or_requires_two_operands(self):
        with pytest.raises(ValueError):
            Or((atom("p"),))

    def test_eq_requires_terms(self):
        with pytest.raises(TypeError):
            Eq("x", "y")


class TestStructure:
    def test_children_of_binary(self):
        f = until(atom("p"), atom("q"))
        assert f.children == (atom("p"), atom("q"))

    def test_walk_preorder(self):
        f = Not(until(atom("p"), atom("q")))
        kinds = [type(node).__name__ for node in f.walk()]
        assert kinds == ["Not", "Until", "Atom", "Atom"]

    def test_size_counts_nodes(self):
        assert atom("p", x).size() == 1
        assert not_(until(atom("p"), atom("q"))).size() == 4

    def test_equality_structural_and_hashable(self):
        f = forall(x, next_(atom("p", x)))
        g = forall(x, next_(atom("p", x)))
        assert f == g
        assert hash(f) == hash(g)
        assert len({f, g}) == 1


class TestFreeVariables:
    def test_atom_free_variables(self):
        assert atom("p", x, y).free_variables() == {x, y}

    def test_quantifier_binds(self):
        f = forall(x, atom("p", x, y))
        assert f.free_variables() == {y}

    def test_nested_binding(self):
        f = exists(x, forall(y, eq(x, y)))
        assert f.free_variables() == frozenset()

    def test_shadowing_inner_bound(self):
        f = forall(x, Exists(x, atom("p", x)))
        assert f.free_variables() == frozenset()

    def test_temporal_transparent(self):
        f = until(atom("p", x), atom("q", y))
        assert f.free_variables() == {x, y}

    def test_is_closed(self):
        assert forall(x, atom("p", x)).is_closed()
        assert not atom("p", x).is_closed()

    def test_constants_not_free(self):
        f = atom("p", "Vip")
        assert f.free_variables() == frozenset()

    def test_cache_does_not_affect_equality(self):
        f = forall(x, atom("p", x, y))
        g = forall(x, atom("p", x, y))
        f.free_variables()  # populate the cache on one copy only
        assert f == g
        assert hash(f) == hash(g)


class TestAccessors:
    def test_predicates(self):
        f = until(atom("p", x), atom("q", x, y))
        assert f.predicates() == {("p", 1), ("q", 2)}

    def test_constants_collection(self):
        f = eq("Vip", x)
        names = {c.name for c in f.constants()}
        assert names == {"Vip"}

    def test_constants_in_atoms(self):
        f = atom("p", "A", x, "B")
        assert {c.name for c in f.constants()} == {"A", "B"}

    def test_true_false_singletons(self):
        assert TRUE == TRUE
        assert FALSE != TRUE
        assert TRUE.size() == 1
