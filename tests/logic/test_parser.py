"""Tests for the FOTL parser and printer (round-trip included)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParseError
from repro.logic import (
    Always,
    Eventually,
    Exists,
    Forall,
    Iff,
    Implies,
    Next,
    Once,
    Prev,
    Release,
    Since,
    Until,
    WeakUntil,
    and_,
    atom,
    eq,
    forall,
    next_,
    not_,
    or_,
    parse,
    to_str,
    until,
    var,
    weak_until,
)


class TestAtoms:
    def test_nullary_atom(self):
        assert parse("p") == atom("p")

    def test_unary_atom_variable(self):
        assert parse("Sub(x)") == atom("Sub", var("x"))

    def test_binary_atom(self):
        assert parse("edge(x, y)") == atom("edge", "x", "y")

    def test_constant_argument(self):
        f = parse("owner(x, Alice)")
        assert {c.name for c in f.constants()} == {"Alice"}

    def test_equality(self):
        assert parse("x = y") == eq("x", "y")

    def test_disequality(self):
        assert parse("x != y") == not_(eq("x", "y"))

    def test_true_false(self):
        assert str(parse("true")) == "true"
        assert str(parse("false")) == "false"


class TestConnectives:
    def test_negation(self):
        assert parse("!p") == not_(atom("p"))

    def test_and_n_ary(self):
        f = parse("p & q & r")
        assert f == and_(atom("p"), atom("q"), atom("r"))

    def test_or_precedence_below_and(self):
        f = parse("p | q & r")
        assert f == or_(atom("p"), and_(atom("q"), atom("r")))

    def test_implies_right_associative(self):
        f = parse("p -> q -> r")
        assert isinstance(f, Implies)
        assert isinstance(f.consequent, Implies)

    def test_iff(self):
        assert isinstance(parse("p <-> q"), Iff)

    def test_parentheses(self):
        f = parse("(p | q) & r")
        assert f == and_(or_(atom("p"), atom("q")), atom("r"))


class TestTemporal:
    @pytest.mark.parametrize(
        "text,node",
        [
            ("X p", Next),
            ("F p", Eventually),
            ("G p", Always),
            ("Y p", Prev),
            ("O p", Once),
        ],
    )
    def test_unary_temporal(self, text, node):
        assert isinstance(parse(text), node)

    @pytest.mark.parametrize(
        "text,node",
        [
            ("p U q", Until),
            ("p W q", WeakUntil),
            ("p R q", Release),
            ("p S q", Since),
        ],
    )
    def test_binary_temporal(self, text, node):
        assert isinstance(parse(text), node)

    def test_unary_binds_tighter_than_binary(self):
        f = parse("X p U G q")
        assert isinstance(f, Until)
        assert isinstance(f.left, Next)
        assert isinstance(f.right, Always)

    def test_nested_binary_needs_parens(self):
        f = parse("(p U q) U r")
        assert isinstance(f, Until)
        assert isinstance(f.left, Until)


class TestQuantifiers:
    def test_forall_multi_variable(self):
        f = parse("forall x y . p(x, y)")
        assert isinstance(f, Forall)
        assert isinstance(f.body, Forall)

    def test_exists(self):
        assert isinstance(parse("exists x . p(x)"), Exists)

    def test_quantifier_scope_extends_right(self):
        f = parse("forall x . p(x) -> q(x)")
        assert isinstance(f, Forall)
        assert isinstance(f.body, Implies)

    def test_paper_example_one(self):
        f = parse("forall x . G (Sub(x) -> X G !Sub(x))")
        assert f.is_closed()


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "p &",
            "forall . p",
            "forall x p",
            "p(",
            "p(x",
            "(p",
            "p q",
            "x =",
            "@",
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(ParseError):
            parse(bad)

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as info:
            parse("p & @")
        assert info.value.position == 4

    def test_reserved_letter_not_an_atom(self):
        # X is the next operator; 'X p' parses, bare 'X' does not.
        with pytest.raises(ParseError):
            parse("X")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "forall x . G (Sub(x) -> X G !Sub(x))",
            "forall x y . G !(x != y & Sub(x) & ((!Fill(x)) U "
            "(Sub(y) & ((!Fill(x)) U (Fill(y) & !Fill(x))))))",
            "p U (q R r)",
            "exists x . p(x) S q(x)",
            "G (p -> Y O q)",
            "forall x . Fill(x) -> Y O Sub(x)",
        ],
    )
    def test_specific_roundtrips(self, text):
        f = parse(text)
        assert parse(to_str(f)) == f

    @given(st.data())
    @settings(max_examples=150, deadline=None)
    def test_random_roundtrip(self, data):
        formula = data.draw(_fotl_formulas())
        assert parse(to_str(formula)) == formula


def _fotl_formulas():
    """Random FOTL formulas built through the smart constructors."""
    from repro.logic import (
        always,
        eventually,
        exists,
        historically,
        implies,
        once,
        prev,
        release,
        since,
    )

    terms = st.sampled_from([var("x"), var("y"), var("z")])
    atoms = st.one_of(
        st.tuples(st.sampled_from(["p", "q"]), terms).map(
            lambda t: atom(t[0], t[1])
        ),
        st.tuples(terms, terms).map(lambda t: eq(t[0], t[1])),
    )

    def extend(children):
        unary = st.one_of(
            children.map(not_),
            children.map(next_),
            children.map(always),
            children.map(eventually),
            children.map(prev),
            children.map(once),
            children.map(historically),
            children.map(lambda f: forall(var("x"), f)),
            children.map(lambda f: exists(var("y"), f)),
        )
        binary = st.one_of(
            st.tuples(children, children).map(lambda p: and_(*p)),
            st.tuples(children, children).map(lambda p: or_(*p)),
            st.tuples(children, children).map(lambda p: implies(*p)),
            st.tuples(children, children).map(lambda p: until(*p)),
            st.tuples(children, children).map(lambda p: weak_until(*p)),
            st.tuples(children, children).map(lambda p: release(*p)),
            st.tuples(children, children).map(lambda p: since(*p)),
        )
        return st.one_of(unary, binary)

    return st.recursive(atoms, extend, max_leaves=8)
