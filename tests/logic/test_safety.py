"""Tests for the syntactic safety recognizer (repro.logic.safety)."""

import pytest
from hypothesis import given, settings

from repro.logic import is_syntactically_safe, parse, why_not_safe
from repro.ptl import from_fotl, is_safety
from repro.workloads import PTLConfig, random_ptl


class TestRecognizer:
    @pytest.mark.parametrize(
        "text",
        [
            "forall x . G (Sub(x) -> X G !Sub(x))",
            "forall x y . G !(x != y & Sub(x) & ((!Fill(x)) U "
            "(Sub(y) & ((!Fill(x)) U (Fill(y) & !Fill(x))))))",
            "G p",
            "p W q",
            "G (p -> X (q | X q))",
            "forall x . G (p(x) -> (q(x) W r(x)))",
            "!(p U q)",
            "G !p",
        ],
    )
    def test_safe_formulas_accepted(self, text):
        assert is_syntactically_safe(parse(text))

    @pytest.mark.parametrize(
        "text",
        [
            "F p",
            "p U q",
            "G F p",
            "forall x . F Fill(x)",
            "forall x . G (Sub(x) -> F Fill(x))",
            "!(p W q)",
            "!(G p)",
        ],
    )
    def test_liveness_laden_formulas_rejected(self, text):
        assert not is_syntactically_safe(parse(text))

    def test_past_subformulas_are_opaque(self):
        # G (past) is safety by Proposition 2.1, even when the past formula
        # contains 'once' (which is harmless: it looks backwards).
        assert is_syntactically_safe(parse("forall x . G (Fill(x) -> Y O Sub(x))"))

    def test_pure_first_order_is_safe(self):
        assert is_syntactically_safe(parse("forall x . p(x) -> q(x)"))

    def test_why_not_safe_names_offender(self):
        reason = why_not_safe(parse("G (p -> F q)"))
        assert reason is not None
        assert "F q" in reason

    def test_why_not_safe_none_for_safe(self):
        assert why_not_safe(parse("G p")) is None


class TestSoundnessAgainstSemantics:
    """The recognizer is sound: syntactically safe implies semantically
    safe.  Verified against the exact propositional decision."""

    @pytest.mark.parametrize(
        "text",
        ["G p", "p W q", "G (p -> X q)", "!(p U q)", "G (p | X !q)"],
    )
    def test_specific(self, text):
        f = parse(text)
        assert is_syntactically_safe(f)
        assert is_safety(from_fotl(f))

    @given(seed=__import__("hypothesis").strategies.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_random_propositional(self, seed):
        ptl_formula = random_ptl(PTLConfig(size=5, propositions=2, seed=seed))
        # Re-express as FOTL (nullary atoms) to run the syntactic check.
        from repro.logic.parser import parse as fotl_parse

        fotl = fotl_parse(str(ptl_formula))
        if is_syntactically_safe(fotl):
            assert is_safety(ptl_formula)

    def test_corpus_agreement(self):
        """Deterministic corpus: every formula the syntactic recognizer
        accepts is semantically safe per the automata-based oracle, and
        the accepted fragment is not vacuous on the corpus."""
        from repro.logic.parser import parse as fotl_parse

        accepted = 0
        for seed in range(120):
            ptl_formula = random_ptl(
                PTLConfig(size=5, propositions=2, seed=seed)
            )
            fotl = fotl_parse(str(ptl_formula))
            if is_syntactically_safe(fotl):
                accepted += 1
                assert is_safety(ptl_formula), str(ptl_formula)
        assert accepted >= 10
