"""Source spans: parser attachment, LineIndex, and span propagation."""

import pytest

from repro.errors import ParseError
from repro.logic import Always, Exists, Implies, parse
from repro.logic.builders import atom, not_
from repro.logic.spans import (
    LineIndex,
    Span,
    copy_span,
    get_span,
    set_span,
)
from repro.ptl.convert import from_fotl


class TestLineIndex:
    def test_single_line(self):
        index = LineIndex("forall x . p(x)")
        assert index.position(0) == (1, 1)
        assert index.position(11) == (1, 12)

    def test_multi_line(self):
        index = LineIndex("p &\n  q &\n  r")
        assert index.position(0) == (1, 1)
        assert index.position(4) == (2, 1)
        assert index.position(6) == (2, 3)
        assert index.position(12) == (3, 3)

    def test_offset_clamped(self):
        index = LineIndex("pq")
        assert index.position(99) == (1, 3)

    def test_span_construction(self):
        index = LineIndex("p & q")
        span = index.span(4, 5)
        assert (span.start, span.end) == (4, 5)
        assert (span.line, span.column) == (1, 5)
        assert str(span) == "line 1, column 5"


class TestParserSpans:
    def test_root_span_covers_whole_input(self):
        text = "forall x . G (Sub(x) -> X G !Sub(x))"
        span = get_span(parse(text))
        assert (span.start, span.end) == (0, len(text))

    def test_subformula_spans_are_narrow(self):
        text = "forall x . G (Sub(x) -> X G !Sub(x))"
        formula = parse(text)
        matrix = formula.body  # G (...)
        assert isinstance(matrix, Always)
        span = get_span(matrix)
        assert text[span.start : span.end] == "G (Sub(x) -> X G !Sub(x))"
        implication = matrix.body
        assert isinstance(implication, Implies)
        inner = get_span(implication)
        assert text[inner.start : inner.end] == "Sub(x) -> X G !Sub(x)"

    def test_internal_quantifier_span(self):
        text = "forall x . G (p(x) -> F (exists y . q(x, y)))"
        formula = parse(text)
        existential = next(
            node for node in formula.walk() if isinstance(node, Exists)
        )
        span = get_span(existential)
        assert text[span.start : span.end] == "exists y . q(x, y)"
        assert span.column == 26

    def test_multiline_spans(self):
        text = "forall x .\n  G p(x)"
        matrix = parse(text).body
        span = get_span(matrix)
        assert (span.line, span.column) == (2, 3)

    def test_singletons_never_carry_spans(self):
        parse("true & p")
        parse("false | p")
        from repro.logic.formulas import FALSE, TRUE

        assert get_span(TRUE) is None
        assert get_span(FALSE) is None

    def test_builder_formulas_have_no_spans(self):
        assert get_span(not_(atom("p"))) is None


class TestSetSpan:
    def test_attach_if_absent(self):
        node = atom("p")
        first = Span(0, 1, 1, 1, 1, 2)
        second = Span(5, 6, 1, 6, 1, 7)
        set_span(node, first)
        set_span(node, second)  # must not overwrite the narrower span
        assert get_span(node) == first

    def test_copy_span(self):
        source = atom("p")
        target = atom("q")
        set_span(source, Span(0, 1, 1, 1, 1, 2))
        copy_span(source, target)
        assert get_span(target) == get_span(source)

    def test_copy_span_without_source_is_noop(self):
        target = atom("q")
        copy_span(atom("p"), target)
        assert get_span(target) is None


class TestConvertThreadsSpans:
    def test_from_fotl_keeps_root_span(self):
        text = "G (p -> X q)"
        fotl = parse(text)
        ptl = from_fotl(fotl)
        span = get_span(ptl)
        assert span is not None
        assert (span.start, span.end) == (0, len(text))


class TestParseErrorPositions:
    def test_line_and_column_attributes(self):
        with pytest.raises(ParseError) as info:
            parse("p &\n  q &\n  @")
        assert info.value.position == 12
        assert info.value.line == 3
        assert info.value.column == 3

    def test_message_names_offending_token(self):
        with pytest.raises(ParseError, match=r"found '\)'"):
            parse("p & )")

    def test_message_reports_position(self):
        with pytest.raises(ParseError, match="line 1, column 5"):
            parse("p & )")

    def test_eof_described(self):
        with pytest.raises(ParseError, match="end of input"):
            parse("p &")

    def test_missing_dot_after_quantifier(self):
        with pytest.raises(ParseError, match=r"expected '\.'"):
            parse("forall x p")

    def test_trailing_input(self):
        with pytest.raises(ParseError, match="trailing"):
            parse("p q")
