"""Tests for repro.logic.terms."""

import pytest

from repro.logic.terms import Constant, Variable, constants, variables


class TestVariable:
    def test_name(self):
        assert Variable("x").name == "x"

    def test_equality_is_structural(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")

    def test_hashable(self):
        assert len({Variable("x"), Variable("x"), Variable("y")}) == 2

    def test_str(self):
        assert str(Variable("order_id")) == "order_id"

    @pytest.mark.parametrize("bad", ["", "1x", "x y", "x-y", "x.y"])
    def test_invalid_names_rejected(self, bad):
        with pytest.raises(ValueError):
            Variable(bad)

    def test_underscore_leading_allowed(self):
        assert Variable("_tmp").name == "_tmp"


class TestConstant:
    def test_distinct_from_variable(self):
        assert Constant("x") != Variable("x")

    def test_equality(self):
        assert Constant("vip") == Constant("vip")

    @pytest.mark.parametrize("bad", ["", "9lives", "a b"])
    def test_invalid_names_rejected(self, bad):
        with pytest.raises(ValueError):
            Constant(bad)


class TestBulkConstructors:
    def test_variables_space_separated(self):
        x, y, z = variables("x y z")
        assert (x.name, y.name, z.name) == ("x", "y", "z")

    def test_variables_comma_separated(self):
        assert [v.name for v in variables("a, b,c")] == ["a", "b", "c"]

    def test_constants(self):
        (c,) = constants("vip")
        assert isinstance(c, Constant)

    def test_empty_string_gives_empty_tuple(self):
        assert variables("  ") == ()
