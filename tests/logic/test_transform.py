"""Tests for substitution, normal forms, and prenexing."""

from repro.logic import (
    FALSE,
    TRUE,
    Always,
    Eventually,
    Exists,
    Not,
    Release,
    Until,
    and_,
    atom,
    const,
    eq,
    eventually,
    forall,
    exists,
    iff,
    implies,
    nnf,
    not_,
    or_,
    parse,
    simplify,
    since,
    strip_universal_prefix,
    substitute,
    to_core,
    until,
    var,
    weak_until,
)
from repro.logic.transform import merge_universal_conjunction

x, y, z = var("x"), var("y"), var("z")
p, q = atom("p"), atom("q")


class TestSubstitute:
    def test_simple(self):
        f = atom("p", x, y)
        assert substitute(f, {x: y}) == atom("p", y, y)

    def test_constant_substitution(self):
        f = atom("p", x)
        assert substitute(f, {x: const("A")}) == atom("p", "A")

    def test_bound_variable_untouched(self):
        f = forall(x, atom("p", x))
        assert substitute(f, {x: y}) == f

    def test_capture_avoided(self):
        # Substituting y for x into 'exists y . p(x, y)' must rename the
        # bound y, not capture.
        f = exists(y, atom("p", x, y))
        g = substitute(f, {x: y})
        assert isinstance(g, Exists)
        assert g.var != y
        assert g.body == atom("p", y, g.var)

    def test_through_temporal(self):
        f = until(atom("p", x), atom("q", x))
        assert substitute(f, {x: y}) == until(atom("p", y), atom("q", y))

    def test_empty_mapping_identity(self):
        f = atom("p", x)
        assert substitute(f, {}) is f


class TestSimplify:
    def test_reflexive_equality(self):
        assert simplify(eq(x, x)) == TRUE

    def test_until_true(self):
        assert simplify(until(p, TRUE)) == TRUE

    def test_until_false(self):
        assert simplify(until(p, FALSE)) == FALSE

    def test_always_true(self):
        assert simplify(parse("G true")) == TRUE

    def test_nested_folding(self):
        f = and_(implies(FALSE, p), or_(q, FALSE))
        assert simplify(f) == q

    def test_eventually_idempotent(self):
        assert simplify(eventually(eventually(p))) == eventually(p)

    def test_iff_same_sides(self):
        assert simplify(iff(p, p)) == TRUE

    def test_since_true(self):
        assert simplify(since(p, TRUE)) == TRUE


class TestNNF:
    def test_negated_until_becomes_release(self):
        f = nnf(not_(until(p, q)))
        assert isinstance(f, Release)
        assert f.left == Not(p)

    def test_negated_release_becomes_until(self):
        assert isinstance(nnf(not_(parse("p R q"))), Until)

    def test_negated_always(self):
        f = nnf(not_(parse("G p")))
        assert isinstance(f, Eventually)

    def test_negation_at_atoms_only(self):
        f = nnf(not_(parse("forall x . p(x) -> (q(x) U r(x))")))
        for node in f.walk():
            if isinstance(node, Not):
                assert not node.operand.children

    def test_quantifier_duality(self):
        f = nnf(not_(forall(x, atom("p", x))))
        assert isinstance(f, Exists)

    def test_weak_until_negation(self):
        # !(p W q) == !q U (!p & !q)
        f = nnf(not_(weak_until(p, q)))
        assert isinstance(f, Until)

    def test_past_negation_left_in_place(self):
        f = nnf(not_(parse("Y p")))
        assert isinstance(f, Not)

    def test_idempotent_on_examples(self):
        for text in ("p U q", "!(p & q)", "G (p -> X q)"):
            f = nnf(parse(text))
            assert nnf(f) == f


class TestToCore:
    def test_eventually_expands(self):
        f = to_core(eventually(p))
        assert f == Until(TRUE, p) or isinstance(f, Until)

    def test_always_uses_until_and_negation(self):
        f = to_core(parse("G p"))
        assert not any(isinstance(n, Always) for n in f.walk())
        assert any(isinstance(n, Until) for n in f.walk())

    def test_core_has_no_derived_nodes(self):
        from repro.logic import (
            Historically,
            Iff,
            Implies,
            Once,
            WeakUntil,
        )

        f = to_core(
            parse("forall x . (p(x) W q(x)) <-> (O p(x) -> H q(x))")
        )
        banned = (Always, Eventually, WeakUntil, Iff, Implies, Once,
                  Historically)
        assert not any(isinstance(n, banned) for n in f.walk())


class TestUniversalPrefix:
    def test_strip(self):
        prefix, matrix = strip_universal_prefix(parse("forall x y . p(x, y)"))
        assert [v.name for v in prefix] == ["x", "y"]
        assert matrix == atom("p", x, y)

    def test_strip_none(self):
        prefix, matrix = strip_universal_prefix(p)
        assert prefix == ()
        assert matrix == p

    def test_merge_conjunction(self):
        f = and_(
            parse("forall x . G p(x)"),
            parse("forall x y . G q(x, y)"),
        )
        merged = merge_universal_conjunction(f)
        prefix, matrix = strip_universal_prefix(merged)
        assert len(prefix) == 2
        assert matrix.free_variables() <= set(prefix)

    def test_merge_keeps_closed_conjuncts(self):
        f = and_(parse("forall x . G p(x)"), parse("G q"))
        merged = merge_universal_conjunction(f)
        prefix, _matrix = strip_universal_prefix(merged)
        assert len(prefix) == 1

    def test_merge_preserves_truth_on_lasso(self):
        # Semantic check: merged and unmerged agree on a concrete database.
        from repro.database import History, LassoDatabase, vocabulary
        from repro.eval import evaluate_lasso_db

        v = vocabulary({"p": 1, "q": 2})
        h = History.from_facts(
            v, [[("p", (1,)), ("q", (1, 2))], [("p", (2,))]]
        )
        db = LassoDatabase.constant_extension(h)
        f = and_(
            parse("forall x . G (p(x) -> p(x))"),
            parse("forall x y . G (q(x, y) -> p(x))"),
        )
        merged = merge_universal_conjunction(f)
        assert evaluate_lasso_db(f, db) == evaluate_lasso_db(merged, db)

    def test_non_conjunction_unchanged(self):
        f = parse("forall x . G p(x)")
        assert merge_universal_conjunction(f) is f
