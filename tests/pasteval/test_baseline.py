"""Tests for the weaker-notion baseline (optimistic prefix evaluation).

The two key relations to the exact checker (Section 5 of the paper):
soundness (the baseline never fires when an extension still exists) and
late detection (the baseline can fire strictly later).
"""

import pytest

from repro.core import IntegrityMonitor
from repro.database import DatabaseState, History, vocabulary
from repro.errors import NotSafetyError
from repro.logic import parse
from repro.pasteval import WeakTruncationChecker

V = vocabulary({"Sub": 1, "Fill": 1})
VP = vocabulary({"p": 1, "q": 1})


def feed(checker, vocab, trace):
    for facts in trace:
        checker.append_state(DatabaseState.from_facts(vocab, facts))
    return checker


class TestBasics:
    def test_detects_visible_violation(self, submit_once):
        checker = WeakTruncationChecker(
            {"once": submit_once}, History.empty(V)
        )
        feed(checker, V, [[("Sub", (1,))], [("Sub", (1,))]])
        assert checker.violations() == {"once": 2}

    def test_clean_trace_no_violations(self, submit_once):
        checker = WeakTruncationChecker(
            {"once": submit_once}, History.empty(V)
        )
        feed(checker, V, [[("Sub", (1,))], [("Sub", (2,))]])
        assert checker.violations() == {}

    def test_accepts_non_universal_constraints(self):
        # Unlike the exact checker, the baseline can evaluate any sentence.
        liveness = parse("forall x . G (Sub(x) -> F Fill(x))")
        checker = WeakTruncationChecker(
            {"live": liveness}, History.empty(V)
        )
        feed(checker, V, [[("Sub", (1,))]])
        assert checker.violations() == {}  # optimism: Fill may still come

    def test_open_formula_rejected(self):
        with pytest.raises(NotSafetyError):
            WeakTruncationChecker(
                {"open": parse("G Sub(x)")}, History.empty(V)
            )

    def test_violation_is_sticky(self, submit_once):
        checker = WeakTruncationChecker(
            {"once": submit_once}, History.empty(V)
        )
        feed(checker, V, [[("Sub", (1,))], [("Sub", (1,))], []])
        assert checker.violations() == {"once": 2}
        report = checker.append_state(DatabaseState.empty(V))
        assert not report.satisfied["once"]


class TestAgainstExactChecker:
    """Soundness and the detection-latency gap (experiment E7's basis)."""

    def _run_both(self, constraints, trace, vocab):
        exact = IntegrityMonitor(constraints, History.empty(vocab))
        weak = WeakTruncationChecker(constraints, History.empty(vocab))
        feed(exact, vocab, trace)
        feed(weak, vocab, trace)
        return exact.violations(), weak.violations()

    def test_same_instant_for_visible_violations(self, submit_once):
        trace = [[("Sub", (1,))], [], [("Sub", (1,))], []]
        exact, weak = self._run_both({"once": submit_once}, trace, V)
        assert exact == weak == {"once": 3}

    def test_baseline_never_earlier(self, submit_once, fifo_fill):
        trace = [
            [("Sub", (1,))],
            [("Sub", (2,))],
            [("Fill", (2,))],
            [("Fill", (1,))],
        ]
        exact, weak = self._run_both(
            {"once": submit_once, "fifo": fifo_fill}, trace, V
        )
        for name, weak_instant in weak.items():
            assert name in exact
            assert exact[name] <= weak_instant

    def test_strict_latency_gap(self):
        """A forced future contradiction: the exact checker sees it the
        moment p occurs; the optimistic baseline only when the visible
        contradiction materializes two instants later."""
        # One constraint: p demands q at the next two instants, while q
        # demands !q at the next instant — jointly unsatisfiable from the
        # moment p occurs, but each obligation looks fine optimistically.
        conflict = parse(
            "forall x . G ((p(x) -> (X q(x)) & X X q(x)) "
            "& (q(x) -> X !q(x)))"
        )
        constraint = {"conflict": conflict}
        trace = [
            [("p", (1,))],
            [("q", (1,))],
            [("q", (1,))],
        ]
        exact = IntegrityMonitor(constraint, History.empty(VP))
        weak = WeakTruncationChecker(constraint, History.empty(VP))
        exact_first = None
        weak_first = None
        for index, facts in enumerate(trace):
            state = DatabaseState.from_facts(VP, facts)
            if exact_first is None:
                if exact.append_state(state).new_violations:
                    exact_first = index + 1
            if weak_first is None:
                if weak.append_state(state).new_violations:
                    weak_first = index + 1
        # The exact monitor flags at t=1: after p at t=1... the conjunction
        # of the two constraints admits no future once p occurred.
        assert exact_first is not None and weak_first is not None
        assert exact_first < weak_first
