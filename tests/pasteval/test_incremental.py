"""Tests for the history-less incremental past evaluator.

The key property: the incremental evaluator agrees with the reference
(whole-history) past evaluator on every state of every history — including
histories whose active domain grows — while its memory footprint stays
independent of the history length.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.database import DatabaseState, History, vocabulary
from repro.errors import ClassificationError, EvaluationError
from repro.eval import evaluate_past
from repro.logic import parse
from repro.pasteval import IncrementalPastEvaluator

V = vocabulary({"Sub": 1, "Fill": 1})


def run_both(formula_text, facts_per_state, vocab=V):
    """Advance the incremental evaluator and compare with the reference."""
    formula = parse(formula_text)
    evaluator = IncrementalPastEvaluator(formula, vocab)
    outcomes = []
    for instant in range(len(facts_per_state)):
        state = DatabaseState.from_facts(vocab, facts_per_state[instant])
        incremental = evaluator.advance(state)
        history = History.from_facts(vocab, facts_per_state[: instant + 1])
        reference = evaluate_past(formula, history, instant=instant)
        outcomes.append((incremental, reference))
    return outcomes


AUDIT = "forall x . Fill(x) -> Y O Sub(x)"
SINCE2 = (
    "forall x y . (Fill(x) & Fill(y)) -> "
    "((!Fill(x)) S Sub(y) | x = y | O Sub(x))"
)


class TestAgainstReference:
    @pytest.mark.parametrize(
        "formula",
        [
            AUDIT,
            SINCE2,
            "forall x . H !Fill(x) | O Sub(x)",
            "exists x . Y Sub(x)",
            "forall x . Sub(x) -> !(Y O Sub(x))",
        ],
    )
    def test_fixed_trace(self, formula):
        trace = [
            [("Sub", (1,))],
            [("Fill", (1,))],
            [("Fill", (2,))],
            [("Sub", (2,))],
            [("Fill", (2,)), ("Sub", (3,))],
            [],
            [("Fill", (3,))],
        ]
        for incremental, reference in run_both(formula, trace):
            assert incremental == reference

    @given(
        trace=st.lists(
            st.lists(
                st.tuples(
                    st.sampled_from(["Sub", "Fill"]),
                    st.tuples(st.integers(0, 3)),
                ),
                max_size=3,
            ),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_random_traces_audit(self, trace):
        for incremental, reference in run_both(AUDIT, trace):
            assert incremental == reference

    @given(
        trace=st.lists(
            st.lists(
                st.tuples(
                    st.sampled_from(["Sub", "Fill"]),
                    st.tuples(st.integers(0, 2)),
                ),
                max_size=2,
            ),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_random_traces_two_variables(self, trace):
        for incremental, reference in run_both(SINCE2, trace):
            assert incremental == reference


class TestHistoryLessness:
    def test_memory_independent_of_length(self):
        formula = parse(AUDIT)
        evaluator = IncrementalPastEvaluator(formula, V)
        state = DatabaseState.from_facts(V, [("Sub", (1,))])
        sizes = []
        for _ in range(30):
            evaluator.advance(state)
            sizes.append(evaluator.memory_size)
        # After the first step the footprint must be constant.
        assert len(set(sizes[2:])) == 1

    def test_memory_grows_with_domain_not_time(self):
        formula = parse(AUDIT)
        evaluator = IncrementalPastEvaluator(formula, V)
        for element in range(5):
            evaluator.advance(
                DatabaseState.from_facts(V, [("Sub", (element,))])
            )
        grown = evaluator.memory_size
        for _ in range(20):
            evaluator.advance(DatabaseState.empty(V))
        assert evaluator.memory_size == grown


class TestAPI:
    def test_future_formula_rejected(self):
        with pytest.raises(ClassificationError):
            IncrementalPastEvaluator(parse("F (exists x . Sub(x))"), V)

    def test_current_value_requires_closed(self):
        evaluator = IncrementalPastEvaluator(parse("O Sub(x)"), V)
        evaluator.advance(DatabaseState.empty(V))
        with pytest.raises(EvaluationError, match="free"):
            evaluator.current_value()

    def test_current_value_before_advance(self):
        evaluator = IncrementalPastEvaluator(
            parse("exists x . O Sub(x)"), V
        )
        with pytest.raises(EvaluationError):
            evaluator.current_value()

    def test_satisfying_assignments_generic_marker(self):
        from repro.core.grounding import Anon

        evaluator = IncrementalPastEvaluator(parse("!(O Sub(x))"), V)
        evaluator.advance(DatabaseState.from_facts(V, [("Sub", (1,))]))
        table = evaluator.satisfying_assignments()
        # Element 1 was submitted; the generic (never-seen) element and no
        # concrete element satisfy 'never submitted'.
        assert (1,) not in table
        assert any(isinstance(value[0], Anon) for value in table)

    def test_constant_binding(self):
        vc = vocabulary({"Sub": 1}, constants=["Vip"])
        evaluator = IncrementalPastEvaluator(parse("O Sub(Vip)"), vc)
        evaluator.bind_constant("Vip", 3)
        assert not evaluator.advance(
            DatabaseState.from_facts(vc, [("Sub", (1,))])
        )
        assert evaluator.advance(
            DatabaseState.from_facts(vc, [("Sub", (3,))])
        )

    def test_constant_binding_after_start_rejected(self):
        vc = vocabulary({"Sub": 1}, constants=["Vip"])
        evaluator = IncrementalPastEvaluator(parse("O Sub(Vip)"), vc)
        evaluator.bind_constant("Vip", 3)
        evaluator.advance(DatabaseState.empty(vc))
        with pytest.raises(EvaluationError):
            evaluator.bind_constant("Vip", 4)
