"""Tests for the G(past) history-less monitor."""

import pytest

from repro.database import DatabaseState, History, vocabulary
from repro.errors import ClassificationError
from repro.logic import parse
from repro.pasteval import PastMonitor, past_body

V = vocabulary({"Sub": 1, "Fill": 1})
AUDIT = parse("forall x . G (Fill(x) -> Y O Sub(x))")


def state(*facts):
    return DatabaseState.from_facts(V, facts)


class TestPastBody:
    def test_extracts_body_under_prefix(self):
        body = past_body(AUDIT)
        assert body == parse("forall x . Fill(x) -> Y O Sub(x)")

    def test_rejects_non_g_matrix(self):
        with pytest.raises(ClassificationError, match="G A"):
            past_body(parse("forall x . Fill(x) -> Y O Sub(x)"))

    def test_rejects_future_body(self):
        with pytest.raises(ClassificationError, match="past"):
            past_body(parse("forall x . G (Sub(x) -> X Fill(x))"))


class TestMonitoring:
    def test_clean_run(self):
        monitor = PastMonitor({"audit": AUDIT}, V)
        for facts in ([("Sub", (1,))], [("Fill", (1,))], []):
            report = monitor.append_state(state(*facts))
            assert report.all_satisfied
        assert monitor.violations() == {}

    def test_violation_at_earliest_body_failure(self):
        monitor = PastMonitor({"audit": AUDIT}, V)
        monitor.append_state(state(("Sub", (1,))))
        report = monitor.append_state(state(("Fill", (2,))))
        assert report.new_violations == ("audit",)
        assert monitor.violations() == {"audit": 1}

    def test_same_instant_fill_not_yet_submitted(self):
        # Y O Sub: the submission must be strictly earlier.
        monitor = PastMonitor({"audit": AUDIT}, V)
        report = monitor.append_state(
            state(("Sub", (1,)), ("Fill", (1,)))
        )
        assert report.new_violations == ("audit",)

    def test_violation_sticky(self):
        monitor = PastMonitor({"audit": AUDIT}, V)
        monitor.append_state(state(("Fill", (9,))))
        report = monitor.append_state(state())
        assert not report.satisfied["audit"]
        assert report.new_violations == ()

    def test_replay(self):
        monitor = PastMonitor({"audit": AUDIT}, V)
        history = History.from_facts(
            V, [[("Sub", (1,))], [("Fill", (1,))]]
        )
        report = monitor.replay(history)
        assert report.instant == 1
        assert report.all_satisfied

    def test_memory_history_less(self):
        monitor = PastMonitor({"audit": AUDIT}, V)
        monitor.append_state(state(("Sub", (1,))))
        footprint = None
        for _ in range(25):
            monitor.append_state(state())
            if footprint is None:
                footprint = monitor.memory_size()
        assert monitor.memory_size() == footprint

    def test_agreement_with_reference_evaluator(self):
        from repro.eval import evaluate_past

        body = past_body(AUDIT)
        trace = [
            [("Sub", (1,))],
            [("Fill", (1,))],
            [("Sub", (2,)), ("Fill", (1,))],
            [("Fill", (2,))],
        ]
        monitor = PastMonitor({"audit": AUDIT}, V)
        for index in range(len(trace)):
            report = monitor.append_state(state(*trace[index]))
            history = History.from_facts(V, trace[: index + 1])
            reference = evaluate_past(body, history, instant=index)
            if "audit" not in monitor.violations() or (
                monitor.violations()["audit"] == index
            ):
                assert report.satisfied["audit"] == reference

    def test_agreement_with_exact_checker_via_future_form(self):
        """The audit constraint has an equivalent future-only form
        ('no fill until a fill-free submission'); the PastMonitor verdicts
        on the past form coincide with the exact checker's on the future
        form, instant by instant."""
        from repro.core import potentially_satisfied

        future_form = parse(
            "forall x . (!Fill(x)) W (Sub(x) & !Fill(x))"
        )
        trace = [[("Sub", (1,))], [("Fill", (1,))], [("Fill", (3,))]]
        monitor = PastMonitor({"audit": AUDIT}, V)
        for index in range(len(trace)):
            monitor.append_state(state(*trace[index]))
            history = History.from_facts(V, trace[: index + 1])
            exact = potentially_satisfied(future_form, history)
            past_view = "audit" not in monitor.violations()
            assert exact == past_view


class TestConstants:
    def test_constant_bindings(self):
        vc = vocabulary({"Fill": 1}, constants=["Vip"])
        constraint = parse("G (Fill(Vip) -> Y Fill(Vip))")
        monitor = PastMonitor(
            {"vip": constraint}, vc, constant_bindings={"Vip": 3}
        )
        report = monitor.append_state(
            DatabaseState.from_facts(vc, [("Fill", (3,))])
        )
        assert report.new_violations == ("vip",)
