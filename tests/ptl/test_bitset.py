"""The bitset satisfiability kernel agrees with the reference engines.

The kernels compile the *same* constructions — GPVW node expansion and the
classical atom tableau — to integer masks; faithfulness is checked by
property tests against the frozenset reference implementations on random
formulas, plus targeted cases for the encodings' edge conditions.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.ptl import (
    BuchiKernel,
    ClosureIndex,
    bitset_cache_clear,
    bitset_cache_info,
    is_satisfiable,
    is_satisfiable_buchi,
    is_satisfiable_buchi_bitset,
    is_satisfiable_tableau,
    is_satisfiable_tableau_bitset,
    palways,
    pand,
    peventually,
    pnext,
    pnot,
    por,
    progress_sequence,
    prop,
    ptl_nnf,
    puntil,
)
from repro.ptl.formulas import PFALSE, PTRUE

from ..conftest import prop_states, ptl_formulas

P, Q, R = prop("p0"), prop("p1"), prop("p2")


class TestBuchiAgreement:
    @settings(max_examples=150, deadline=None)
    @given(ptl_formulas())
    def test_matches_reference(self, formula):
        assert is_satisfiable_buchi_bitset(formula) == is_satisfiable_buchi(
            formula, engine="reference"
        )

    @settings(max_examples=60, deadline=None)
    @given(ptl_formulas(), prop_states(), prop_states())
    def test_progressed_remainders_agree(self, formula, s0, s1):
        """Monitor-shaped inputs: remainders after consuming states."""
        remainder = progress_sequence(ptl_nnf(formula), [s0, s1])
        assert is_satisfiable_buchi_bitset(
            remainder
        ) == is_satisfiable_buchi(remainder, engine="reference")

    @settings(max_examples=100, deadline=None)
    @given(ptl_formulas())
    def test_shared_kernel_consistent(self, formula):
        """One long-lived kernel (the monitor's usage pattern) answers the
        same as a fresh per-formula decision."""
        shared = BuchiKernel()
        assert shared.is_satisfiable(formula) == is_satisfiable_buchi_bitset(
            formula
        )
        # Asking again must hit the verdict memo, not recompute wrongly.
        assert shared.is_satisfiable(formula) == is_satisfiable_buchi_bitset(
            formula
        )


class TestTableauAgreement:
    @settings(max_examples=100, deadline=None)
    @given(ptl_formulas(max_props=2, max_depth=3))
    def test_matches_reference(self, formula):
        try:
            expected = is_satisfiable_tableau(
                formula, max_base=10, engine="reference"
            )
        except ValueError:
            with pytest.raises(ValueError):
                is_satisfiable_tableau_bitset(formula, max_base=10)
            return
        assert (
            is_satisfiable_tableau_bitset(formula, max_base=10) == expected
        )

    def test_base_cap_enforced(self):
        wide = pand(
            *(puntil(prop(f"p{i}"), prop(f"p{i + 1}")) for i in range(6))
        )
        with pytest.raises(ValueError):
            is_satisfiable_tableau_bitset(wide, max_base=3)


class TestKernelBasics:
    def test_constants(self):
        kernel = BuchiKernel()
        assert kernel.is_satisfiable(PTRUE)
        assert not kernel.is_satisfiable(PFALSE)
        assert is_satisfiable_tableau_bitset(PTRUE)
        assert not is_satisfiable_tableau_bitset(PFALSE)

    def test_classic_verdicts(self):
        kernel = BuchiKernel()
        assert kernel.is_satisfiable(puntil(P, Q))
        assert not kernel.is_satisfiable(pand(palways(P), pnot(P)))
        assert not kernel.is_satisfiable(
            pand(peventually(P), palways(pnot(P)))
        )
        assert kernel.is_satisfiable(
            pand(palways(por(P, Q)), peventually(pnot(P)))
        )
        # G X (p U q): the eventuality lives under nesting.
        assert kernel.is_satisfiable(palways(pnext(puntil(P, Q))))

    def test_closure_index_stable_bits(self):
        index = ClosureIndex()
        bit_p = index.bit(P)
        index.bit(Q)
        index.bit(R)
        assert index.bit(P) == bit_p  # re-registration never moves a bit
        assert index.get(P) == bit_p
        assert set(index.formulas((1 << bit_p))) == {P}

    def test_engine_dispatch(self):
        formula = puntil(P, palways(Q))
        for method in ("buchi", "tableau"):
            assert is_satisfiable(
                formula, method=method, engine="bitset"
            ) == is_satisfiable(formula, method=method, engine="reference")
        with pytest.raises(ValueError):
            is_satisfiable(formula, engine="nonsense")

    def test_cache_clear_and_info(self):
        is_satisfiable_buchi_bitset(puntil(P, Q))
        info = bitset_cache_info()
        assert info["buchi_kernel"]["verdicts"] >= 1
        bitset_cache_clear()
        info = bitset_cache_info()
        assert info["buchi_kernel"]["verdicts"] == 0
        # Still correct after a clear.
        assert is_satisfiable_buchi_bitset(puntil(P, Q))
