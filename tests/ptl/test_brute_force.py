"""Third-opinion validation of the satisfiability engines.

Enumerate *all* small lasso models (stem length <= 1, loop length <= 2,
over two letters) and evaluate the formula on each with the exact lasso
evaluator.  Any hit proves satisfiability — the engines must agree; and
for formulas the engines call satisfiable, the GPVW witness itself is a
model, so the three views (brute force, Büchi, tableau) can never give a
"satisfiable" verdict the others refute.
"""

from itertools import product as cartesian

from hypothesis import given, settings

from repro.ptl import (
    LassoModel,
    evaluate_lasso,
    is_satisfiable_buchi,
    is_satisfiable_tableau,
    prop,
)

from ..conftest import ptl_formulas

_PROPS = (prop("p0"), prop("p1"))
_STATES = [
    frozenset(chosen)
    for size in range(3)
    for chosen in cartesian(_PROPS, repeat=size)
    if len(set(chosen)) == size
]


def _small_lassos():
    for loop_len in (1, 2):
        for loop in cartesian(_STATES, repeat=loop_len):
            yield LassoModel(stem=(), loop=tuple(loop))
            for stem_state in _STATES:
                yield LassoModel(stem=(stem_state,), loop=tuple(loop))


SMALL_LASSOS = list(_small_lassos())


class TestBruteForceAgreement:
    @given(formula=ptl_formulas(max_props=2))
    @settings(max_examples=100, deadline=None)
    def test_small_model_implies_engines_agree_sat(self, formula):
        has_small_model = any(
            evaluate_lasso(formula, model, 0) for model in SMALL_LASSOS
        )
        if has_small_model:
            assert is_satisfiable_buchi(formula)
            assert is_satisfiable_tableau(formula)

    @given(formula=ptl_formulas(max_props=2))
    @settings(max_examples=100, deadline=None)
    def test_unsat_verdicts_have_no_small_countermodel(self, formula):
        if not is_satisfiable_buchi(formula):
            assert not any(
                evaluate_lasso(formula, model, 0)
                for model in SMALL_LASSOS
            )
