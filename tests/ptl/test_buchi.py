"""Tests for the GPVW Büchi construction and lasso extraction."""

import pytest
from hypothesis import given, settings

from repro.ptl import (
    LassoModel,
    build_automaton,
    find_lasso_model,
    is_satisfiable_buchi,
    parse_ptl,
    prop,
    satisfies,
)

from ..conftest import ptl_formulas


class TestLassoModel:
    def test_state_at_folds_into_loop(self):
        m = LassoModel(
            stem=(frozenset({prop("a")}),),
            loop=(frozenset(), frozenset({prop("b")})),
        )
        assert m.state_at(0) == frozenset({prop("a")})
        assert m.state_at(1) == frozenset()
        assert m.state_at(2) == frozenset({prop("b")})
        assert m.state_at(3) == frozenset()  # wrapped

    def test_empty_loop_rejected(self):
        with pytest.raises(ValueError):
            LassoModel(stem=(), loop=())

    def test_prefix(self):
        m = LassoModel(stem=(), loop=(frozenset(),))
        assert len(m.prefix(5)) == 5


class TestSatisfiability:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("p", True),
            ("p & !p", False),
            ("G (p -> X q)", True),
            ("F p", True),
            ("G p & F !p", False),
            ("p U q", True),
            ("(p U q) & G !q", False),
            ("G F p", True),
            ("G F p & G F !p", True),
            ("F G p & G F !p", False),
            ("X X p & G !p", False),
            ("(p W q) & G !q & G p", True),
            ("p R q", True),
            ("(p R q) & F !q & G !p", False),
        ],
    )
    def test_known_cases(self, text, expected):
        assert is_satisfiable_buchi(parse_ptl(text)) is expected

    def test_true_and_false(self):
        from repro.ptl import PFALSE, PTRUE

        assert is_satisfiable_buchi(PTRUE)
        assert not is_satisfiable_buchi(PFALSE)


class TestWitnesses:
    @given(formula=ptl_formulas())
    @settings(max_examples=150, deadline=None)
    def test_every_witness_satisfies_its_formula(self, formula):
        model = find_lasso_model(formula)
        if model is not None:
            assert satisfies(model, formula)

    @given(formula=ptl_formulas())
    @settings(max_examples=100, deadline=None)
    def test_witness_iff_satisfiable(self, formula):
        assert (find_lasso_model(formula) is not None) == (
            is_satisfiable_buchi(formula)
        )

    def test_witness_for_conjunction_of_eventualities(self):
        f = parse_ptl("G F p & G F !p")
        model = find_lasso_model(f)
        assert model is not None
        assert satisfies(model, f)
        # The loop must contain both a p-state and a non-p state.
        has_p = any(prop("p") in s for s in model.loop)
        has_not_p = any(prop("p") not in s for s in model.loop)
        assert has_p and has_not_p


class TestAutomatonStructure:
    def test_unsat_formula_gives_empty_automaton_language(self):
        auto = build_automaton(parse_ptl("p & !p"))
        assert auto.is_empty()

    def test_reachability(self):
        auto = build_automaton(parse_ptl("G p"))
        assert auto.reachable() <= auto.states

    def test_transitions_total_on_states(self):
        auto = build_automaton(parse_ptl("p U q"))
        for state in auto.states:
            assert state in auto.transitions

    def test_labels_consistent(self):
        auto = build_automaton(parse_ptl("p & X !p"))
        for state in auto.states:
            positive, negative = auto.labels[state]
            assert not (positive & negative)
