"""Tests for the propositional extension problem (Lemma 4.2)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ptl import (
    can_extend,
    check_extension,
    check_extension_detailed,
    evaluate_lasso,
    parse_ptl,
    satisfies,
    state,
)

from ..conftest import prop_states, ptl_formulas


class TestCanExtend:
    def test_empty_prefix_is_satisfiability(self):
        assert can_extend([], parse_ptl("F p"))
        assert not can_extend([], parse_ptl("p & !p"))

    def test_violating_prefix(self):
        f = parse_ptl("G (p -> X q)")
        assert not can_extend([state("p"), state()], f)

    def test_recoverable_prefix(self):
        f = parse_ptl("G (p -> X q)")
        assert can_extend([state("p"), state("q")], f)

    def test_pending_obligation_extendable(self):
        # (p U q) with only p seen so far: q can still come.
        assert can_extend([state("p")], parse_ptl("p U q"))

    def test_dead_obligation(self):
        # (p U q) after a state with neither p nor q.
        assert not can_extend([state()], parse_ptl("p U q"))

    def test_methods_agree(self):
        f = parse_ptl("G (p -> X q) & F p")
        prefix = [state("p")]
        assert can_extend(prefix, f, method="buchi") == can_extend(
            prefix, f, method="tableau"
        )

    def test_quick_path_agrees(self):
        f = parse_ptl("G !p")
        assert can_extend([state()], f, quick=True) == can_extend(
            [state()], f, quick=False
        )


class TestWitness:
    def test_witness_extends_prefix_and_satisfies(self):
        f = parse_ptl("G (p -> X q) & F p")
        prefix = (state("p"), state("q"))
        result = check_extension(prefix, f, want_witness=True)
        assert result.extendable
        witness = result.witness
        assert witness.prefix(2) == prefix
        assert satisfies(witness, f)

    def test_no_witness_when_violated(self):
        f = parse_ptl("G !p")
        result = check_extension([state("p")], f, want_witness=True)
        assert not result.extendable
        assert result.witness is None

    @given(
        formula=ptl_formulas(),
        prefix=st.lists(prop_states(), max_size=3),
    )
    @settings(max_examples=120, deadline=None)
    def test_witness_always_valid(self, formula, prefix):
        result = check_extension(tuple(prefix), formula, want_witness=True)
        if result.extendable:
            witness = result.witness
            assert witness is not None
            assert witness.prefix(len(prefix)) == tuple(prefix)
            assert satisfies(witness, formula)
        else:
            assert result.witness is None


class TestDetailed:
    def test_phase_times_recorded(self):
        f = parse_ptl("G (p -> X q)")
        result = check_extension_detailed([state("p"), state("q")], f)
        assert result.extendable
        assert result.progression_seconds >= 0
        assert result.satisfiability_seconds >= 0

    @given(
        formula=ptl_formulas(),
        prefix=st.lists(prop_states(), max_size=3),
    )
    @settings(max_examples=80, deadline=None)
    def test_detailed_agrees_with_plain(self, formula, prefix):
        assert check_extension_detailed(
            tuple(prefix), formula
        ).extendable == can_extend(tuple(prefix), formula)


class TestAgainstSemantics:
    @given(
        formula=ptl_formulas(),
        prefix=st.lists(prop_states(), max_size=3),
    )
    @settings(max_examples=100, deadline=None)
    def test_extension_never_wrong_positive(self, formula, prefix):
        """If extendable, there really is an extension (the witness); if
        not, then in particular the all-false extension fails."""
        from repro.ptl import LassoModel

        extendable = can_extend(tuple(prefix), formula)
        all_false = LassoModel(
            stem=tuple(prefix), loop=(frozenset(),)
        )
        if evaluate_lasso(formula, all_false, 0):
            assert extendable
