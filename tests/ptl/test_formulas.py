"""Tests for the PTL AST and smart constructors."""

import pytest

from repro.ptl import (
    PFALSE,
    PTRUE,
    PAnd,
    PEventually,
    PAlways,
    Prop,
    palways,
    pand,
    pconj,
    peventually,
    pimplies,
    pnext,
    pnot,
    por,
    prelease,
    prop,
    puntil,
    pweak_until,
)

p, q, r = prop("p"), prop("q"), prop("r")


class TestProps:
    def test_structured_names_allowed(self):
        assert Prop(("pred", (1, 2))).name == ("pred", (1, 2))

    def test_unhashable_name_rejected(self):
        with pytest.raises(TypeError):
            Prop(["list"])

    def test_propositions_collection(self):
        f = pand(p, puntil(q, r))
        assert f.propositions() == {p, q, r}


class TestConstructors:
    def test_pnot_folding(self):
        assert pnot(PTRUE) == PFALSE
        assert pnot(pnot(p)) == p

    def test_pand_flatten_dedup(self):
        f = pand(p, pand(q, p))
        assert isinstance(f, PAnd)
        assert f.operands == (p, q)

    def test_pand_false_short_circuit(self):
        assert pand(p, PFALSE) == PFALSE

    def test_pand_empty_and_single(self):
        assert pand() == PTRUE
        assert pand(p) == p

    def test_por_dual(self):
        assert por(p, PTRUE) == PTRUE
        assert por() == PFALSE
        assert por(p, por(q, p)) == por(p, q)

    def test_pimplies_folding(self):
        assert pimplies(PTRUE, p) == p
        assert pimplies(p, PFALSE) == pnot(p)

    def test_pnext_constant(self):
        assert pnext(PTRUE) == PTRUE

    def test_puntil_foldings(self):
        assert puntil(p, PTRUE) == PTRUE
        assert puntil(p, PFALSE) == PFALSE
        assert puntil(PFALSE, q) == q
        assert isinstance(puntil(PTRUE, q), PEventually)

    def test_prelease_foldings(self):
        assert prelease(PTRUE, q) == q
        assert isinstance(prelease(PFALSE, q), PAlways)

    def test_pweak_until_foldings(self):
        assert pweak_until(p, PTRUE) == PTRUE
        assert isinstance(pweak_until(p, PFALSE), PAlways)

    def test_idempotent_modalities(self):
        assert peventually(peventually(p)) == peventually(p)
        assert palways(palways(p)) == palways(p)

    def test_pconj(self):
        assert pconj([p, q]) == pand(p, q)


class TestStrings:
    @pytest.mark.parametrize(
        "build,text",
        [
            (lambda: pand(p, q), "p & q"),
            (lambda: por(p, pand(q, r)), "p | q & r"),
            (lambda: puntil(p, q), "p U q"),
            (lambda: palways(pimplies(p, pnext(q))), "G (p -> X q)"),
            (lambda: pnot(p), "!p"),
        ],
    )
    def test_render(self, build, text):
        assert str(build()) == text

    def test_size(self):
        assert pand(p, puntil(q, r)).size() == 5
