"""Properties of the hash-consed formula representation.

Interning is an *implementation* change: structurally equal formulas become
the same object, ``__eq__`` short-circuits on identity, and ``__hash__``
returns a precomputed value.  These tests pin down the contract:

* pointer identity coincides with structural equality for anything built
  through the (interned) constructors;
* un-interned instances (``object.__new__`` bypasses, as a stand-in for the
  pre-interning representation) still agree with interned ones through
  hashing, NNF, progression, and both satisfiability engines;
* deep nesting neither blows the recursion limit nor breaks hashing.
"""

from __future__ import annotations

import copy
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ptl import (
    PFALSE,
    PTRUE,
    PAlways,
    PAnd,
    PEventually,
    PImplies,
    PNext,
    PNot,
    POr,
    PRelease,
    PTLFormula,
    PUntil,
    PWeakUntil,
    Prop,
    is_satisfiable_buchi,
    is_satisfiable_tableau,
    progress,
    progress_sequence,
    prop,
    ptl_nnf,
)
from repro.ptl.caches import clear_all_caches
from repro.ptl.formulas import intern_cache_info

from ..conftest import prop_states, ptl_formulas


def _rebuild(formula: PTLFormula) -> PTLFormula:
    """Reconstruct a formula bottom-up through the raw node constructors.

    With interning this must return the *same object*: each constructor call
    resolves to the canonical node for its field values.
    """
    match formula:
        case Prop(name=name):
            return Prop(name)
        case PNot(operand=op):
            return PNot(_rebuild(op))
        case PAnd(operands=ops):
            return PAnd(tuple(_rebuild(op) for op in ops))
        case POr(operands=ops):
            return POr(tuple(_rebuild(op) for op in ops))
        case PImplies(antecedent=a, consequent=c):
            return PImplies(_rebuild(a), _rebuild(c))
        case PNext(body=body):
            return PNext(_rebuild(body))
        case PUntil(left=left, right=right):
            return PUntil(_rebuild(left), _rebuild(right))
        case PWeakUntil(left=left, right=right):
            return PWeakUntil(_rebuild(left), _rebuild(right))
        case PRelease(left=left, right=right):
            return PRelease(_rebuild(left), _rebuild(right))
        case PEventually(body=body):
            return PEventually(_rebuild(body))
        case PAlways(body=body):
            return PAlways(_rebuild(body))
        case _:
            return formula  # PTLTrue / PTLFalse singletons


def _uninterned_clone(formula: PTLFormula) -> PTLFormula:
    """A structurally equal copy that bypasses the interning metaclass.

    Built with ``object.__new__`` + ``object.__setattr__``, so it has no
    precomputed ``_hash`` and is *not* the canonical node — exactly the
    representation the pre-interning implementation used.
    """
    cls = formula.__class__
    clone = object.__new__(cls)
    for name, value in zip(cls._intern_fields, formula._identity()):
        if isinstance(value, PTLFormula):
            value = _uninterned_clone(value)
        elif isinstance(value, tuple) and value and isinstance(
            value[0], PTLFormula
        ):
            value = tuple(_uninterned_clone(v) for v in value)
        object.__setattr__(clone, name, value)
    return clone


class TestPointerIdentity:
    @given(formula=ptl_formulas(max_props=3))
    @settings(max_examples=200, deadline=None)
    def test_rebuild_is_same_object(self, formula):
        assert _rebuild(formula) is formula

    @given(f=ptl_formulas(max_props=2), g=ptl_formulas(max_props=2))
    @settings(max_examples=200, deadline=None)
    def test_identical_iff_equal(self, f, g):
        # For interned formulas, structural equality IS identity.
        assert (f == g) == (f is g)
        if f is g:
            assert hash(f) == hash(g)

    def test_singletons(self):
        from repro.ptl.formulas import PTLFalse, PTLTrue

        assert PTLTrue() is PTRUE
        assert PTLFalse() is PFALSE
        p = prop("p")
        assert prop("p") is p
        assert PNot(p) is PNot(p)
        assert PAnd((p, PNot(p))) is PAnd((p, PNot(p)))
        assert prop("q") is not p

    def test_list_and_kwargs_construction_canonicalized(self):
        p, q = prop("p"), prop("q")
        assert PAnd([p, q]) is PAnd((p, q))
        assert PUntil(left=p, right=q) is PUntil(p, q)

    def test_validation_still_fires(self):
        with pytest.raises(ValueError):
            PAnd((prop("p"),))
        with pytest.raises(TypeError):
            Prop(["unhashable"])

    def test_pickle_and_deepcopy_reintern(self):
        f = PUntil(prop("p"), PAlways(POr((prop("q"), prop("r")))))
        assert pickle.loads(pickle.dumps(f)) is f
        assert copy.deepcopy(f) is f

    def test_cache_is_weak(self):
        import gc

        before = intern_cache_info()["size"]
        f = PNext(prop(("unique-letter-for-weakness-test",)))
        assert intern_cache_info()["size"] > before
        del f
        gc.collect()
        assert intern_cache_info()["size"] <= before + 1


class TestUninternedAgreement:
    """The hash-consed representation changes nothing observable.

    A clone built outside the intern table plays the role of the
    non-interned reference implementation: every derived computation must
    coincide with the canonical node's.
    """

    @given(formula=ptl_formulas(max_props=2))
    @settings(max_examples=150, deadline=None)
    def test_clone_is_equal_but_distinct(self, formula):
        clone = _uninterned_clone(formula)
        if formula.children or isinstance(formula, Prop):
            assert clone is not formula
        assert clone == formula
        assert formula == clone
        assert hash(clone) == hash(formula)

    @given(formula=ptl_formulas(max_props=2))
    @settings(max_examples=100, deadline=None)
    def test_nnf_agrees(self, formula):
        clone = _uninterned_clone(formula)
        assert ptl_nnf(clone) == ptl_nnf(formula)

    @given(
        formula=ptl_formulas(max_props=2),
        states=st.lists(prop_states(max_props=2), max_size=4),
    )
    @settings(max_examples=100, deadline=None)
    def test_progression_agrees(self, formula, states):
        clone = _uninterned_clone(formula)
        expected = progress_sequence(formula, states)
        assert progress_sequence(clone, states) == expected
        for current in states:
            assert progress(clone, current) == progress(formula, current)

    @given(formula=ptl_formulas(max_props=2))
    @settings(max_examples=60, deadline=None)
    def test_satisfiability_agrees(self, formula):
        clone = _uninterned_clone(formula)
        verdict = is_satisfiable_buchi(formula)
        assert is_satisfiable_buchi(clone) == verdict
        assert is_satisfiable_tableau(clone) == verdict

    @given(
        formula=ptl_formulas(max_props=2),
        states=st.lists(prop_states(max_props=2), max_size=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_progress_then_sat_cross_validation(self, formula, states):
        # The acceptance-criterion pipeline: progress a prefix, then decide
        # the remainder with both engines, starting from the interned
        # formula and from the un-interned reference clone.
        remainder = progress_sequence(formula, states)
        clone_remainder = progress_sequence(_uninterned_clone(formula), states)
        assert clone_remainder == remainder
        assert is_satisfiable_buchi(remainder) == is_satisfiable_buchi(
            clone_remainder
        )
        assert is_satisfiable_tableau(remainder) == is_satisfiable_tableau(
            clone_remainder
        )


class TestDeepNesting:
    DEPTH = 20_000

    def test_deep_chain_constructs_hashes_compares(self):
        f = prop("p")
        for _ in range(self.DEPTH):
            f = PNext(f)
        g = prop("p")
        for _ in range(self.DEPTH):
            g = PNext(g)
        # No RecursionError anywhere below: construction interns level by
        # level, hashing is precomputed, equality is pointer equality, and
        # propositions()/size() walk iteratively.
        assert g is f
        assert hash(g) == hash(f)
        assert g == f
        assert f.propositions() == frozenset({prop("p")})
        assert f.size() == self.DEPTH + 1

    def test_caches_clearable(self):
        clear_all_caches()  # derived caches only; interning survives
        p = prop("p")
        assert prop("p") is p
