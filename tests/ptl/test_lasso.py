"""Tests for exact PTL evaluation on lasso models."""

import pytest

from repro.ptl import (
    LassoModel,
    evaluate_lasso,
    palways,
    pand,
    peventually,
    pnext,
    prelease,
    prop,
    puntil,
    pweak_until,
    parse_ptl,
)

p, q = prop("p"), prop("q")
P = frozenset({p})
Q = frozenset({q})
PQ = frozenset({p, q})
EMPTY = frozenset()


def lasso(stem, loop):
    return LassoModel(stem=tuple(stem), loop=tuple(loop))


class TestBasics:
    def test_proposition(self):
        m = lasso([P], [EMPTY])
        assert evaluate_lasso(p, m, 0)
        assert not evaluate_lasso(p, m, 1)

    def test_next(self):
        m = lasso([EMPTY, P], [EMPTY])
        assert evaluate_lasso(pnext(p), m, 0)

    def test_negative_instant_rejected(self):
        with pytest.raises(ValueError):
            evaluate_lasso(p, lasso([], [EMPTY]), -1)


class TestFixpoints:
    def test_eventually_finds_in_loop(self):
        m = lasso([EMPTY], [EMPTY, P])
        assert evaluate_lasso(peventually(p), m, 0)

    def test_eventually_false_when_never(self):
        m = lasso([P], [EMPTY])
        assert not evaluate_lasso(peventually(q), m, 0)

    def test_always_on_loop(self):
        m = lasso([EMPTY], [P])
        assert not evaluate_lasso(palways(p), m, 0)
        assert evaluate_lasso(palways(p), m, 1)

    def test_until_within_stem(self):
        m = lasso([P, P, Q], [EMPTY])
        assert evaluate_lasso(puntil(p, q), m, 0)

    def test_until_unfulfilled_in_loop(self):
        # p forever, q never: strong until fails, weak until holds.
        m = lasso([], [P])
        assert not evaluate_lasso(puntil(p, q), m, 0)
        assert evaluate_lasso(pweak_until(p, q), m, 0)

    def test_release_held_forever(self):
        m = lasso([], [Q])
        assert evaluate_lasso(prelease(p, q), m, 0)

    def test_release_discharged(self):
        m = lasso([Q, PQ, EMPTY], [EMPTY])
        assert evaluate_lasso(prelease(p, q), m, 0)

    def test_infinitely_often(self):
        m = lasso([], [P, EMPTY])
        f = parse_ptl("G F p & G F !p")
        assert evaluate_lasso(f, m, 0)

    def test_fg_vs_gf(self):
        m = lasso([EMPTY, EMPTY], [P])
        assert evaluate_lasso(parse_ptl("F G p"), m, 0)
        assert not evaluate_lasso(parse_ptl("G p"), m, 0)


class TestInstantFolding:
    def test_deep_instant_matches_loop_position(self):
        m = lasso([EMPTY], [P, Q])
        # instants 1,3,5.. are P; 2,4,6.. are Q
        assert evaluate_lasso(p, m, 1)
        assert evaluate_lasso(q, m, 2)
        assert evaluate_lasso(p, m, 17)

    def test_expansion_law_until(self):
        # p U q == q | (p & X(p U q)) at every instant of any lasso.
        m = lasso([P, Q], [EMPTY, P])
        f = puntil(p, q)
        expansion = pand  # placeholder to keep imports used
        from repro.ptl import por

        g = por(q, pand(p, pnext(f)))
        for instant in range(6):
            assert evaluate_lasso(f, m, instant) == evaluate_lasso(
                g, m, instant
            )
