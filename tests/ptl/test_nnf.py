"""Tests for PTL negation normal form and FOTL->PTL conversion."""

import pytest
from hypothesis import given, settings

from repro.errors import ClassificationError
from repro.ptl import (
    equivalent,
    from_fotl,
    is_nnf_core,
    parse_ptl,
    pnot,
    ptl_nnf,
)

from ..conftest import ptl_formulas


class TestNNF:
    @given(formula=ptl_formulas())
    @settings(max_examples=150, deadline=None)
    def test_nnf_is_core(self, formula):
        assert is_nnf_core(ptl_nnf(formula))

    @given(formula=ptl_formulas())
    @settings(max_examples=100, deadline=None)
    def test_nnf_preserves_meaning(self, formula):
        assert equivalent(formula, ptl_nnf(formula))

    @given(formula=ptl_formulas())
    @settings(max_examples=100, deadline=None)
    def test_negation_duality(self, formula):
        assert equivalent(pnot(formula), ptl_nnf(pnot(formula)))

    def test_weak_until_elimination(self):
        f = ptl_nnf(parse_ptl("p W q"))
        assert is_nnf_core(f)
        assert equivalent(f, parse_ptl("(p U q) | G p"))

    def test_implication_elimination(self):
        f = ptl_nnf(parse_ptl("p -> q"))
        assert equivalent(f, parse_ptl("!p | q"))


class TestConversion:
    def test_nullary_atoms_become_props(self):
        f = from_fotl(__import__("repro.logic", fromlist=["parse"]).parse("p & X q"))
        assert {str(p.name) for p in f.propositions()} == {"p", "q"}

    def test_quantifier_rejected(self):
        from repro.logic import parse

        with pytest.raises(ClassificationError):
            from_fotl(parse("exists x . p(x)"))

    def test_nonnullary_atom_rejected(self):
        from repro.logic import parse

        with pytest.raises(ClassificationError):
            from_fotl(parse("p(x)"))

    def test_past_rejected(self):
        from repro.logic import parse

        with pytest.raises(ClassificationError):
            from_fotl(parse("Y p"))

    def test_equality_rejected(self):
        from repro.logic import parse

        with pytest.raises(ClassificationError):
            from_fotl(parse("x = y"))

    def test_parse_ptl_roundtrip_through_str(self):
        f = parse_ptl("G (p -> X (q U r))")
        assert parse_ptl(str(f)) == f
