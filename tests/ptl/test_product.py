"""Tests for the automaton product (the safety-analysis building block)."""

from hypothesis import given, settings

from repro.ptl import (
    build_automaton,
    pand,
    parse_ptl,
    product,
)

from ..conftest import ptl_formulas


class TestProduct:
    def test_product_empty_for_contradictions(self):
        a = build_automaton(parse_ptl("G p"))
        b = build_automaton(parse_ptl("F !p"))
        assert product(a, b).is_empty()

    def test_product_nonempty_for_compatible(self):
        a = build_automaton(parse_ptl("G (p -> X q)"))
        b = build_automaton(parse_ptl("F p"))
        assert not product(a, b).is_empty()

    def test_product_with_self(self):
        a = build_automaton(parse_ptl("p U q"))
        assert not product(a, a).is_empty()

    @given(left=ptl_formulas(max_props=2), right=ptl_formulas(max_props=2))
    @settings(max_examples=80, deadline=None)
    def test_product_emptiness_is_conjunction_satisfiability(
        self, left, right
    ):
        from repro.ptl import is_satisfiable

        combined = pand(left, right)
        product_empty = product(
            build_automaton(left), build_automaton(right)
        ).is_empty()
        assert product_empty == (not is_satisfiable(combined))

    def test_labels_merge(self):
        a = build_automaton(parse_ptl("p"))
        b = build_automaton(parse_ptl("q"))
        combined = product(a, b)
        assert not combined.is_empty()
        # Some initial product state demands both letters.
        demanding = [
            combined.labels[s]
            for s in combined.initial
        ]
        assert any(
            {"p", "q"} <= {pr.name for pr in positive}
            for positive, _negative in demanding
        )
