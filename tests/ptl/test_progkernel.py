"""The compiled progression kernel pinned to the reference engine.

Every test compares :class:`repro.ptl.progkernel.ProgressionKernel` (and
the module-level convenience functions) against the recursive
:func:`repro.ptl.progression.progress` on the same inputs.  Because both
sides intern through :mod:`repro.ptl.formulas`, agreement is asserted as
pointer identity, not mere equality — the strongest form the faithfulness
argument of DESIGN.md §10 admits.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ptl import PFALSE, PTRUE, palways, pand, pnext, prop, puntil
from repro.ptl.progkernel import (
    ProgressionKernel,
    progkernel_cache_clear,
    progkernel_cache_info,
    progress_compiled,
    progress_sequence_compiled,
    progress_trace_compiled,
)
from repro.ptl.progression import (
    progress,
    progress_sequence,
    progress_trace,
)

from ..conftest import prop_states, ptl_formulas

state_seqs = st.lists(prop_states(), min_size=1, max_size=6)


class TestKernelMatchesReference:
    @given(formula=ptl_formulas(), state=prop_states())
    @settings(max_examples=300, deadline=None)
    def test_single_step_identity(self, formula, state):
        kernel = ProgressionKernel()
        assert kernel.progress_formula(formula, state) is progress(
            formula, state
        )

    @given(formula=ptl_formulas(), states=state_seqs)
    @settings(max_examples=200, deadline=None)
    def test_sequence_identity(self, formula, states):
        kernel = ProgressionKernel()
        expected = formula
        oid = kernel.intern(formula)
        for state in states:
            expected = progress(expected, state)
            oid = kernel.progress_id(oid, kernel.encode_state(state))
            assert kernel.formula(oid) is expected

    @given(formula=ptl_formulas(), states=state_seqs)
    @settings(max_examples=100, deadline=None)
    def test_warm_table_is_still_exact(self, formula, states):
        # Drive the same trajectory twice through one kernel: the second
        # run answers from the compiled rows and must not drift.
        kernel = ProgressionKernel()
        first = [
            kernel.progress_formula(formula, state) for state in states
        ]
        hits_before = kernel.hits
        second = [
            kernel.progress_formula(formula, state) for state in states
        ]
        assert all(a is b for a, b in zip(first, second))
        assert kernel.hits > hits_before

    @given(formula=ptl_formulas(), states=state_seqs)
    @settings(max_examples=200, deadline=None)
    def test_replay_matches_reference_sequence(self, formula, states):
        # progress_replay distributes over top-level conjuncts (DESIGN.md
        # §10, "Replay distribution"); the final remainder must be the
        # very object the reference stepwise sequence produces.
        kernel = ProgressionKernel()
        oid = kernel.intern(formula)
        masks = [kernel.encode_state(state) for state in states]
        replayed = kernel.formula(kernel.progress_replay(oid, masks))
        assert replayed is progress_sequence(formula, states)

    @given(formulas=st.lists(ptl_formulas(), min_size=1, max_size=5),
           state=prop_states())
    @settings(max_examples=100, deadline=None)
    def test_batch_matches_individual(self, formulas, state):
        kernel = ProgressionKernel()
        ids = [kernel.intern(f) for f in formulas]
        mask = kernel.encode_state(state)
        batch = kernel.progress_batch(ids, mask)
        individual = [kernel.progress_id(oid, mask) for oid in ids]
        assert batch == individual
        assert [kernel.formula(i) for i in batch] == [
            progress(f, state) for f in formulas
        ]


class TestConjunctionDecomposition:
    def test_ground_conjunction_goes_through_conjunct_rows(self):
        # The monitoring shape: a big conjunction of G-obligations whose
        # conjuncts repeat across instants.
        conjuncts = [
            palways(pand(prop(f"p{i}"), pnext(prop(f"q{i}"))))
            for i in range(4)
        ]
        formula = pand(*conjuncts)
        kernel = ProgressionKernel()
        # Every guard holds, so no conjunct collapses to FALSE and the
        # decomposition visits every conjunct row (a falsified conjunct
        # legitimately short-circuits the reassembly).
        state = frozenset(prop(f"p{i}") for i in range(4))
        assert kernel.progress_formula(formula, state) is progress(
            formula, state
        )
        stats = kernel.stats()
        # The top-level miss recursed into one row per distinct conjunct.
        assert stats["transitions"] > len(conjuncts)

    def test_constants_are_fixed_points(self):
        kernel = ProgressionKernel()
        mask = kernel.encode_state(frozenset({prop("p0")}))
        assert kernel.progress_id(kernel.true_id, mask) == kernel.true_id
        assert kernel.progress_id(kernel.false_id, mask) == kernel.false_id


class TestEviction:
    @given(formula=ptl_formulas(), states=state_seqs)
    @settings(max_examples=50, deadline=None)
    def test_tiny_table_stays_exact(self, formula, states):
        # max_transitions=1 forces an eviction on nearly every step; ids
        # and letter bits survive, so results must be unchanged.
        kernel = ProgressionKernel(max_transitions=1)
        expected = formula
        for state in states:
            expected = progress(expected, state)
            assert kernel.progress_formula(formula, state) is progress(
                formula, state
            )
        kernel2 = ProgressionKernel(max_transitions=1)
        out = formula
        for state in states:
            out = kernel2.progress_formula(out, state)
        assert out is expected

    def test_eviction_counter_and_bound(self):
        kernel = ProgressionKernel(max_transitions=1)
        f = puntil(prop("p0"), prop("p1"))
        kernel.progress_formula(f, frozenset({prop("p0")}))
        kernel.progress_formula(f, frozenset({prop("p1")}))
        assert kernel.evictions >= 1
        assert kernel.stats()["transitions"] <= 1

    def test_rejects_nonpositive_bound(self):
        try:
            ProgressionKernel(max_transitions=0)
        except ValueError:
            pass
        else:
            raise AssertionError("max_transitions=0 must be rejected")


class TestModuleLevelFunctions:
    @given(formula=ptl_formulas(), state=prop_states())
    @settings(max_examples=100, deadline=None)
    def test_progress_compiled(self, formula, state):
        assert progress_compiled(formula, state) is progress(formula, state)

    @given(formula=ptl_formulas(), states=state_seqs)
    @settings(max_examples=100, deadline=None)
    def test_sequence_parity(self, formula, states):
        assert progress_sequence_compiled(
            formula, states
        ) is progress_sequence(formula, states)

    @given(formula=ptl_formulas(), states=state_seqs)
    @settings(max_examples=100, deadline=None)
    def test_trace_parity(self, formula, states):
        compiled = progress_trace_compiled(formula, states)
        reference = progress_trace(formula, states)
        assert len(compiled) == len(reference)
        assert all(a is b for a, b in zip(compiled, reference))

    @given(formula=ptl_formulas(), states=state_seqs)
    @settings(max_examples=50, deadline=None)
    def test_engine_dispatch(self, formula, states):
        # progression's engine= axis routes to the compiled functions.
        assert progress_sequence(
            formula, states, engine="compiled"
        ) is progress_sequence(formula, states, engine="reference")
        compiled = progress_trace(formula, states, engine="compiled")
        reference = progress_trace(formula, states, engine="reference")
        assert all(a is b for a, b in zip(compiled, reference))

    def test_engine_validation(self):
        try:
            progress_sequence(PTRUE, [], engine="vectorized")
        except ValueError as error:
            assert "engine" in str(error)
        else:
            raise AssertionError("bad engine must be rejected")

    def test_cache_clear_resets_default_kernel(self):
        progress_compiled(
            puntil(prop("p0"), prop("p1")), frozenset({prop("p0")})
        )
        assert progkernel_cache_info()["obligations"] > 2
        progkernel_cache_clear()
        info = progkernel_cache_info()
        # Only the constants remain interned.
        assert info["obligations"] == 2
        assert info["transitions"] == 0
        assert info["hits"] == 0


class TestDiagnostics:
    def test_stats_shape(self):
        kernel = ProgressionKernel()
        kernel.progress_formula(
            palways(prop("p0")), frozenset({prop("p0")})
        )
        stats = kernel.stats()
        assert set(stats) == {
            "obligations",
            "letters",
            "transitions",
            "hits",
            "misses",
            "evictions",
        }
        assert stats["misses"] >= 1
        assert stats["letters"] >= 1

    def test_constants_short_circuit_sequences(self):
        # PFALSE after one step: the sequence must stop progressing.
        f = prop("p0")
        out = progress_sequence_compiled(
            f, [frozenset(), frozenset({prop("p0")})]
        )
        assert out is PFALSE
        trace = progress_trace_compiled(
            f, [frozenset(), frozenset({prop("p0")})]
        )
        assert trace == [f, PFALSE, PFALSE]
