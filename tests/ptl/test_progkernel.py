"""The compiled progression kernel pinned to the reference engine.

Every test compares :class:`repro.ptl.progkernel.ProgressionKernel` (and
the module-level convenience functions) against the recursive
:func:`repro.ptl.progression.progress` on the same inputs.  Because both
sides intern through :mod:`repro.ptl.formulas`, agreement is asserted as
pointer identity, not mere equality — the strongest form the faithfulness
argument of DESIGN.md §10 admits.
"""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.ptl import PFALSE, PTRUE, palways, pand, pnext, prop, puntil
from repro.ptl.formulas import (
    PAlways,
    PEventually,
    PImplies,
    PNext,
    PNot,
    POr,
    PRelease,
    PUntil,
    PWeakUntil,
    Prop,
    peventually,
    pimplies,
    pnot,
    por,
    prelease,
    pweak_until,
)
from repro.ptl.progkernel import (
    ProgressionKernel,
    progkernel_cache_clear,
    progkernel_cache_info,
    progress_compiled,
    progress_sequence_compiled,
    progress_trace_compiled,
)
from repro.ptl.progression import (
    progress,
    progress_cache_clear,
    progress_cache_info,
    progress_sequence,
    progress_trace,
)

from ..conftest import prop_states, ptl_formulas

state_seqs = st.lists(prop_states(), min_size=1, max_size=6)


class TestKernelMatchesReference:
    @given(formula=ptl_formulas(), state=prop_states())
    @settings(max_examples=300, deadline=None)
    def test_single_step_identity(self, formula, state):
        kernel = ProgressionKernel()
        assert kernel.progress_formula(formula, state) is progress(
            formula, state
        )

    @given(formula=ptl_formulas(), states=state_seqs)
    @settings(max_examples=200, deadline=None)
    def test_sequence_identity(self, formula, states):
        kernel = ProgressionKernel()
        expected = formula
        oid = kernel.intern(formula)
        for state in states:
            expected = progress(expected, state)
            oid = kernel.progress_id(oid, kernel.encode_state(state))
            assert kernel.formula(oid) is expected

    @given(formula=ptl_formulas(), states=state_seqs)
    @settings(max_examples=100, deadline=None)
    def test_warm_table_is_still_exact(self, formula, states):
        # Drive the same trajectory twice through one kernel: the second
        # run answers from the compiled rows and must not drift.
        kernel = ProgressionKernel()
        first = [
            kernel.progress_formula(formula, state) for state in states
        ]
        hits_before = kernel.hits
        second = [
            kernel.progress_formula(formula, state) for state in states
        ]
        assert all(a is b for a, b in zip(first, second))
        assert kernel.hits > hits_before

    @given(formula=ptl_formulas(), states=state_seqs)
    @settings(max_examples=200, deadline=None)
    def test_replay_matches_reference_sequence(self, formula, states):
        # progress_replay distributes over top-level conjuncts (DESIGN.md
        # §10, "Replay distribution"); the final remainder must be the
        # very object the reference stepwise sequence produces.
        kernel = ProgressionKernel()
        oid = kernel.intern(formula)
        masks = [kernel.encode_state(state) for state in states]
        replayed = kernel.formula(kernel.progress_replay(oid, masks))
        assert replayed is progress_sequence(formula, states)

    @given(formula=ptl_formulas(), states=state_seqs, cut=st.integers(0, 6))
    @settings(max_examples=200, deadline=None)
    def test_resumed_replay_matches_fresh_replay(self, formula, states, cut):
        # The finals cache lets a later replay of an extended sequence
        # resume mid-prefix; the result must be the exact object a fresh
        # full replay (and the reference sequence) produces.
        cut = min(cut, len(states))
        kernel = ProgressionKernel()
        oid = kernel.intern(formula)
        masks = [kernel.encode_state(state) for state in states]
        finals: dict[int, int] = {}
        kernel.progress_replay(oid, masks[:cut], finals=finals)
        resumed = kernel.progress_replay(
            oid, masks, finals=finals, resume_from=cut
        )
        assert kernel.formula(resumed) is progress_sequence(formula, states)

    @given(formulas=st.lists(ptl_formulas(), min_size=1, max_size=5),
           state=prop_states())
    @settings(max_examples=100, deadline=None)
    def test_batch_matches_individual(self, formulas, state):
        kernel = ProgressionKernel()
        ids = [kernel.intern(f) for f in formulas]
        mask = kernel.encode_state(state)
        batch = kernel.progress_batch(ids, mask)
        individual = [kernel.progress_id(oid, mask) for oid in ids]
        assert batch == individual
        assert [kernel.formula(i) for i in batch] == [
            progress(f, state) for f in formulas
        ]


class TestConjunctionDecomposition:
    def test_ground_conjunction_goes_through_conjunct_rows(self):
        # The monitoring shape: a big conjunction of G-obligations whose
        # conjuncts repeat across instants.
        conjuncts = [
            palways(pand(prop(f"p{i}"), pnext(prop(f"q{i}"))))
            for i in range(4)
        ]
        formula = pand(*conjuncts)
        kernel = ProgressionKernel()
        # Every guard holds, so no conjunct collapses to FALSE and the
        # decomposition visits every conjunct row (a falsified conjunct
        # legitimately short-circuits the reassembly).
        state = frozenset(prop(f"p{i}") for i in range(4))
        assert kernel.progress_formula(formula, state) is progress(
            formula, state
        )
        stats = kernel.stats()
        # The top-level miss recursed into one row per distinct conjunct.
        assert stats["transitions"] > len(conjuncts)

    def test_constants_are_fixed_points(self):
        kernel = ProgressionKernel()
        mask = kernel.encode_state(frozenset({prop("p0")}))
        assert kernel.progress_id(kernel.true_id, mask) == kernel.true_id
        assert kernel.progress_id(kernel.false_id, mask) == kernel.false_id


class TestEviction:
    @given(formula=ptl_formulas(), states=state_seqs)
    @settings(max_examples=50, deadline=None)
    def test_tiny_table_stays_exact(self, formula, states):
        # max_transitions=1 forces an eviction on nearly every step; ids
        # and letter bits survive, so results must be unchanged.
        kernel = ProgressionKernel(max_transitions=1)
        expected = formula
        for state in states:
            expected = progress(expected, state)
            assert kernel.progress_formula(formula, state) is progress(
                formula, state
            )
        kernel2 = ProgressionKernel(max_transitions=1)
        out = formula
        for state in states:
            out = kernel2.progress_formula(out, state)
        assert out is expected

    def test_eviction_counter_and_bound(self):
        kernel = ProgressionKernel(max_transitions=1)
        f = puntil(prop("p0"), prop("p1"))
        kernel.progress_formula(f, frozenset({prop("p0")}))
        kernel.progress_formula(f, frozenset({prop("p1")}))
        assert kernel.evictions >= 1
        assert kernel.stats()["transitions"] <= 1

    def test_rejects_nonpositive_bound(self):
        try:
            ProgressionKernel(max_transitions=0)
        except ValueError:
            pass
        else:
            raise AssertionError("max_transitions=0 must be rejected")


class TestModuleLevelFunctions:
    @given(formula=ptl_formulas(), state=prop_states())
    @settings(max_examples=100, deadline=None)
    def test_progress_compiled(self, formula, state):
        assert progress_compiled(formula, state) is progress(formula, state)

    @given(formula=ptl_formulas(), states=state_seqs)
    @settings(max_examples=100, deadline=None)
    def test_sequence_parity(self, formula, states):
        assert progress_sequence_compiled(
            formula, states
        ) is progress_sequence(formula, states)

    @given(formula=ptl_formulas(), states=state_seqs)
    @settings(max_examples=100, deadline=None)
    def test_trace_parity(self, formula, states):
        compiled = progress_trace_compiled(formula, states)
        reference = progress_trace(formula, states)
        assert len(compiled) == len(reference)
        assert all(a is b for a, b in zip(compiled, reference))

    @given(formula=ptl_formulas(), states=state_seqs)
    @settings(max_examples=50, deadline=None)
    def test_engine_dispatch(self, formula, states):
        # progression's engine= axis routes to the compiled functions.
        assert progress_sequence(
            formula, states, engine="compiled"
        ) is progress_sequence(formula, states, engine="reference")
        compiled = progress_trace(formula, states, engine="compiled")
        reference = progress_trace(formula, states, engine="reference")
        assert all(a is b for a, b in zip(compiled, reference))

    def test_engine_validation(self):
        try:
            progress_sequence(PTRUE, [], engine="vectorized")
        except ValueError as error:
            assert "engine" in str(error)
        else:
            raise AssertionError("bad engine must be rejected")

    def test_cache_clear_resets_default_kernel(self):
        progress_compiled(
            puntil(prop("p0"), prop("p1")), frozenset({prop("p0")})
        )
        assert progkernel_cache_info()["obligations"] > 2
        progkernel_cache_clear()
        info = progkernel_cache_info()
        # Only the constants remain interned.
        assert info["obligations"] == 2
        assert info["transitions"] == 0
        assert info["hits"] == 0


class TestDiagnostics:
    def test_stats_shape(self):
        kernel = ProgressionKernel()
        kernel.progress_formula(
            palways(prop("p0")), frozenset({prop("p0")})
        )
        stats = kernel.stats()
        assert set(stats) == {
            "obligations",
            "letters",
            "transitions",
            "hits",
            "misses",
            "evictions",
            "reference_delegations",
            "misses_by_rule",
        }
        assert stats["misses"] >= 1
        assert stats["letters"] >= 1
        assert stats["reference_delegations"] == 0
        assert stats["misses_by_rule"]["always"] >= 1
        assert sum(stats["misses_by_rule"].values()) == stats["misses"]

    def test_constants_short_circuit_sequences(self):
        # PFALSE after one step: the sequence must stop progressing.
        f = prop("p0")
        out = progress_sequence_compiled(
            f, [frozenset(), frozenset({prop("p0")})]
        )
        assert out is PFALSE
        trace = progress_trace_compiled(
            f, [frozenset(), frozenset({prop("p0")})]
        )
        assert trace == [f, PFALSE, PFALSE]


#: One entry per native rewrite rule: (constructor over random operand
#: formulas, the node type the constructed formula must keep for the rule
#: to be the one exercised, the rule's ``misses_by_rule`` key).
_RULE_SHAPES = [
    ("always", lambda ops: palways(ops[0]), PAlways, "always"),
    ("until", lambda ops: puntil(ops[0], ops[1]), PUntil, "until"),
    (
        "weak_until",
        lambda ops: pweak_until(ops[0], ops[1]),
        PWeakUntil,
        "weak_until",
    ),
    ("release", lambda ops: prelease(ops[0], ops[1]), PRelease, "release"),
    (
        "eventually",
        lambda ops: peventually(ops[0]),
        PEventually,
        "eventually",
    ),
    ("next", lambda ops: pnext(ops[0]), PNext, "next"),
    ("or", lambda ops: por(ops[0], ops[1]), POr, "or"),
    ("implies", lambda ops: pimplies(ops[0], ops[1]), PImplies, "implies"),
    ("not", lambda ops: pnot(ops[0]), PNot, "not"),
    ("literal", lambda ops: prop("p0"), Prop, "literal"),
]


class TestPerRuleOracle:
    """Each native id-space rewrite rule pinned, in isolation, to the
    reference engine on random operands — pointer identity, the rule's
    own miss counter bumped, and zero reference delegations."""

    @pytest.mark.parametrize(
        "build,node_type,rule",
        [shape[1:] for shape in _RULE_SHAPES],
        ids=[shape[0] for shape in _RULE_SHAPES],
    )
    @given(operands=st.lists(ptl_formulas(), min_size=2, max_size=2),
           state=prop_states())
    @settings(max_examples=60, deadline=None)
    def test_rule_matches_reference(
        self, build, node_type, rule, operands, state
    ):
        formula = build(operands)
        # The smart constructors may simplify the shape away (e.g. G of a
        # constant); the rule is only exercised when the node survives.
        assume(isinstance(formula, node_type))
        kernel = ProgressionKernel()
        assert kernel.progress_formula(formula, state) is progress(
            formula, state
        )
        info = kernel.info()
        assert info.misses_by_rule[rule] >= 1
        assert info.reference_delegations == 0

    @given(formula=ptl_formulas(), states=state_seqs)
    @settings(max_examples=100, deadline=None)
    def test_negated_literal_and_deep_chains(self, formula, states):
        # ¬literal has a dedicated mask-test fast path; wrap random
        # formulas in ¬ and chain to cover it alongside the generic rule.
        wrapped = pnot(formula)
        kernel = ProgressionKernel()
        expected = wrapped
        oid = kernel.intern(wrapped)
        for state in states:
            expected = progress(expected, state)
            oid = kernel.progress_id(oid, kernel.encode_state(state))
            assert kernel.formula(oid) is expected
        assert kernel.reference_delegations == 0


class TestNoDelegation:
    """The reference engine is oracle-only: the supported fragment never
    reaches it, and a warmed table answers every repeat from rows."""

    @given(formulas=st.lists(ptl_formulas(), min_size=1, max_size=6),
           states=state_seqs)
    @settings(max_examples=100, deadline=None)
    def test_random_run_never_delegates(self, formulas, states):
        kernel = ProgressionKernel()
        for formula in formulas:
            oid = kernel.intern(formula)
            for state in states:
                oid = kernel.progress_id(oid, kernel.encode_state(state))
        info = kernel.info()
        assert info.reference_delegations == 0
        assert info.misses_by_rule["reference"] == 0
        assert sum(info.misses_by_rule.values()) == info.misses

    @given(formula=ptl_formulas(), states=state_seqs)
    @settings(max_examples=100, deadline=None)
    def test_second_pass_records_zero_misses(self, formula, states):
        kernel = ProgressionKernel()
        masks = [kernel.encode_state(state) for state in states]
        oid = kernel.intern(formula)
        first = oid
        for mask in masks:
            first = kernel.progress_id(first, mask)
        misses_before = kernel.misses
        second = oid
        for mask in masks:
            second = kernel.progress_id(second, mask)
        assert second == first
        assert kernel.misses == misses_before


class TestCacheIsolation:
    """Compiled-kernel traffic must not consult nor populate the
    reference engine's formula-level LRU (regression: the PR 6 kernel
    delegated case-(b) misses to ``progress``, churning that memo)."""

    @given(formulas=st.lists(ptl_formulas(), min_size=1, max_size=4),
           states=state_seqs)
    @settings(max_examples=60, deadline=None)
    def test_compiled_traffic_leaves_reference_lru_cold(
        self, formulas, states
    ):
        progress_cache_clear()
        kernel = ProgressionKernel()
        for formula in formulas:
            oid = kernel.intern(formula)
            for state in states:
                oid = kernel.progress_id(oid, kernel.encode_state(state))
            kernel.formula(oid)
        info = progress_cache_info()
        assert info.hits == 0
        assert info.misses == 0
        assert info.currsize == 0
