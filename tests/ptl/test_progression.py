"""Tests for formula progression (Lemma 4.2, phase 1).

The central property — progression's *fundamental theorem* — is checked
against the independent lasso evaluator on random formulas and models::

    model |= f   iff   model-from-1 |= progress(f, model[0])
"""

import pytest
from hypothesis import given, settings

from repro.ptl import (
    PFALSE,
    PTRUE,
    evaluate_lasso,
    palways,
    pand,
    peventually,
    pimplies,
    pnext,
    pnot,
    por,
    progress,
    progress_sequence,
    progress_trace,
    prop,
    puntil,
    pweak_until,
    state,
)
from repro.ptl.progression import evaluate_state_formula

from ..conftest import lasso_models, ptl_formulas

p, q = prop("p"), prop("q")


class TestProgressBasics:
    def test_proposition_true(self):
        assert progress(p, state("p")) == PTRUE

    def test_proposition_false(self):
        assert progress(p, state()) == PFALSE

    def test_next_defers(self):
        assert progress(pnext(p), state()) == p

    def test_until_fulfilled(self):
        assert progress(puntil(p, q), state("q")) == PTRUE

    def test_until_waits(self):
        f = puntil(p, q)
        assert progress(f, state("p")) == f

    def test_until_dies(self):
        assert progress(puntil(p, q), state()) == PFALSE

    def test_always_accumulates(self):
        f = palways(p)
        assert progress(f, state("p")) == f
        assert progress(f, state()) == PFALSE

    def test_eventually_persists(self):
        f = peventually(p)
        assert progress(f, state()) == f
        assert progress(f, state("p")) == PTRUE

    def test_weak_until_like_until_mid_run(self):
        f = pweak_until(p, q)
        assert progress(f, state("p")) == f
        assert progress(f, state("q")) == PTRUE
        assert progress(f, state()) == PFALSE

    def test_negation_commutes(self):
        f = pnot(pnext(p))
        assert progress(f, state()) == pnot(p)

    def test_implication(self):
        f = pimplies(p, pnext(q))
        assert progress(f, state()) == PTRUE  # antecedent false
        assert progress(f, state("p")) == q


class TestProgressSequence:
    def test_short_circuit_on_false(self):
        f = palways(p)
        states = [state("p"), state(), state("p")]
        assert progress_sequence(f, states) == PFALSE

    def test_trace_length(self):
        f = palways(pimplies(p, pnext(q)))
        states = [state("p"), state("q")]
        trace = progress_trace(f, states)
        assert len(trace) == 3
        assert trace[0] == f

    def test_trace_short_circuits_on_constant(self):
        # Once the obligation collapses to a constant it progresses to
        # itself forever; the trace stops progressing and pads instead.
        f = palways(p)
        states = [state("p"), state(), state("p"), state("p")]
        trace = progress_trace(f, states)
        assert len(trace) == len(states) + 1
        assert trace[0] == f
        assert trace[2] == PFALSE  # violated at the empty state
        assert trace[3] is trace[2] and trace[4] is trace[2]

    def test_trace_short_circuits_on_true(self):
        f = peventually(p)
        states = [state(), state("p"), state(), state()]
        trace = progress_trace(f, states)
        assert len(trace) == len(states) + 1
        assert trace[2] == PTRUE
        assert trace[-1] == PTRUE

    def test_trace_no_padding_when_no_constant(self):
        f = palways(pimplies(p, pnext(q)))
        states = [state("p"), state("q"), state()]
        trace = progress_trace(f, states)
        assert len(trace) == 4
        assert not any(t in (PTRUE, PFALSE) for t in trace)

    def test_g_implication_chain(self):
        # G (p -> X q) through p, q, {} is consistent.
        f = palways(pimplies(p, pnext(q)))
        assert progress_sequence(f, [state("p"), state("q"), state()]) != PFALSE
        # ... and through p, {} is violated.
        assert progress_sequence(f, [state("p"), state()]) == PFALSE


class TestFundamentalProperty:
    """progress is sound and complete w.r.t. the exact lasso semantics."""

    @given(formula=ptl_formulas(), model=lasso_models())
    @settings(max_examples=200, deadline=None)
    def test_progress_step(self, formula, model):
        before = evaluate_lasso(formula, model, 0)
        progressed = progress(formula, model.state_at(0))
        after = evaluate_lasso(progressed, model, 1)
        assert before == after

    @given(formula=ptl_formulas(), model=lasso_models())
    @settings(max_examples=100, deadline=None)
    def test_progress_many_steps(self, formula, model):
        length = len(model.stem) + len(model.loop)
        remainder = progress_sequence(
            formula, [model.state_at(i) for i in range(length)]
        )
        assert evaluate_lasso(formula, model, 0) == evaluate_lasso(
            remainder, model, length
        )


class TestStateFormulaEvaluation:
    def test_boolean_evaluation(self):
        f = por(pand(p, q), pnot(p))
        assert evaluate_state_formula(f, state("p", "q"))
        assert evaluate_state_formula(f, state())
        assert not evaluate_state_formula(f, state("p"))

    def test_temporal_rejected(self):
        with pytest.raises(ValueError):
            evaluate_state_formula(pnext(p), state())
