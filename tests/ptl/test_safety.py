"""Tests for semantic safety / liveness analysis of PTL formulas."""

import pytest
from hypothesis import given, settings

from repro.ptl import (
    PFALSE,
    PTRUE,
    closure_automaton,
    is_liveness,
    is_safety,
    is_satisfiable,
    parse_ptl,
)

from ..conftest import ptl_formulas


class TestSafety:
    @pytest.mark.parametrize(
        "text",
        ["G p", "G (p -> X q)", "p W q", "!p", "p", "G !p", "p R q",
         "X X p", "G (p -> X (q | X q))"],
    )
    def test_safety_formulas(self, text):
        assert is_safety(parse_ptl(text))

    @pytest.mark.parametrize(
        "text",
        ["F p", "p U q", "G F p", "F G p", "p | F q"],
    )
    def test_non_safety_formulas(self, text):
        assert not is_safety(parse_ptl(text))

    def test_constants(self):
        assert is_safety(PTRUE)
        assert is_safety(PFALSE)  # the empty property is (vacuously) safety


class TestLiveness:
    @pytest.mark.parametrize("text", ["F p", "G F p", "p | F q", "F !p"])
    def test_liveness_formulas(self, text):
        assert is_liveness(parse_ptl(text))

    @pytest.mark.parametrize("text", ["G p", "p", "p U q", "p W q"])
    def test_non_liveness_formulas(self, text):
        assert not is_liveness(parse_ptl(text))

    def test_true_is_both(self):
        assert is_safety(PTRUE) and is_liveness(PTRUE)

    def test_false_is_not_liveness(self):
        assert not is_liveness(PFALSE)


class TestAlpernSchneiderStructure:
    """Sanity relations between the notions (Alpern & Schneider 1985)."""

    @given(formula=ptl_formulas(max_props=2))
    @settings(max_examples=60, deadline=None)
    def test_safety_and_liveness_implies_trivial(self, formula):
        # A property that is both safety and liveness is the set of all
        # sequences: the formula must be valid.
        if is_safety(formula) and is_liveness(formula):
            from repro.ptl import is_valid

            assert is_valid(formula)

    @given(formula=ptl_formulas(max_props=2))
    @settings(max_examples=60, deadline=None)
    def test_liveness_implies_always_potentially_satisfied(self, formula):
        # Liveness formulas are useless as constraints: every prefix
        # extends to a model — in particular the formula is satisfiable.
        if is_liveness(formula):
            assert is_satisfiable(formula)

    def test_closure_automaton_nonempty_for_satisfiable(self):
        auto = closure_automaton(parse_ptl("p U q"))
        assert not auto.is_empty()

    def test_closure_of_safety_equals_formula(self):
        # For a safety formula, the closure adds nothing; the negation
        # product is empty (this is what is_safety checks — assert the
        # building block directly).
        from repro.ptl import build_automaton, pnot, product

        f = parse_ptl("G (p -> X q)")
        closure = closure_automaton(f)
        negation = build_automaton(pnot(f))
        assert product(closure, negation).is_empty()
