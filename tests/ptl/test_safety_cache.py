"""Memoization of the safety/liveness analysis (cache health).

``closure_automaton`` builds a Büchi automaton per query — by far the
most expensive step of :func:`is_safety` — and the hierarchy corpus
tests plus the TIC131 lint cross-check hammer the same formulas
repeatedly.  The analyses are pure functions of interned (identity-
hashable) formulas, so ``lru_cache`` memoization is sound; these tests
pin the cache plumbing and its integration with the central registry.
"""

from repro.ptl import (
    closure_automaton,
    is_liveness,
    is_safety,
    parse_ptl,
    safety_cache_clear,
    safety_cache_info,
)
from repro.ptl.caches import cache_info, clear_all_caches


class TestSafetyCache:
    def test_repeat_query_hits_cache(self):
        safety_cache_clear()
        formula = parse_ptl("G (p -> X q)")
        assert is_safety(formula)
        before = safety_cache_info()["is_safety"]["hits"]
        assert is_safety(formula)
        after = safety_cache_info()["is_safety"]["hits"]
        assert after == before + 1

    def test_closure_automaton_memoized(self):
        safety_cache_clear()
        formula = parse_ptl("p U q")
        assert closure_automaton(formula) is closure_automaton(formula)
        assert safety_cache_info()["closure_automaton"]["hits"] >= 1

    def test_liveness_memoized(self):
        safety_cache_clear()
        formula = parse_ptl("F p")
        assert is_liveness(formula)
        assert is_liveness(formula)
        assert safety_cache_info()["is_liveness"]["hits"] >= 1

    def test_clear_resets_counters(self):
        is_safety(parse_ptl("G p"))
        safety_cache_clear()
        info = safety_cache_info()
        for entry in info.values():
            assert entry["currsize"] == 0
            assert entry["hits"] == 0

    def test_info_covers_all_three_analyses(self):
        assert set(safety_cache_info()) == {
            "closure_automaton", "is_safety", "is_liveness",
        }

    def test_registered_in_central_cache_registry(self):
        is_safety(parse_ptl("G (p -> X q)"))
        assert cache_info()["safety"]["is_safety"]["currsize"] >= 1
        clear_all_caches()
        assert cache_info()["safety"]["is_safety"]["currsize"] == 0
