"""Tests for the satisfiability facade (validity, equivalence, quick path)."""

import pytest
from hypothesis import given, settings

from repro.ptl import (
    PFALSE,
    equivalent,
    find_model,
    is_satisfiable,
    is_valid,
    parse_ptl,
    pnot,
    quick_model_check,
    satisfies,
)

from ..conftest import ptl_formulas


class TestFacade:
    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown method"):
            is_satisfiable(parse_ptl("p"), method="magic")

    def test_validity(self):
        assert is_valid(parse_ptl("p | !p"))
        assert not is_valid(parse_ptl("p"))
        assert is_valid(parse_ptl("(G p) -> p"))
        assert not is_valid(parse_ptl("p -> G p"))

    def test_known_equivalences(self):
        assert equivalent(parse_ptl("F p"), parse_ptl("true U p"))
        assert equivalent(parse_ptl("G p"), parse_ptl("!(F !p)"))
        assert equivalent(parse_ptl("p W q"), parse_ptl("(p U q) | G p"))
        assert equivalent(parse_ptl("p R q"), parse_ptl("!(!p U !q)"))
        assert not equivalent(parse_ptl("p U q"), parse_ptl("p W q"))

    def test_find_model_none_for_unsat(self):
        assert find_model(PFALSE) is None

    def test_find_model_satisfies(self):
        f = parse_ptl("(p U q) & G (q -> X !q)")
        model = find_model(f)
        assert model is not None and satisfies(model, f)


class TestQuickPath:
    def test_quick_finds_quiescent_model(self):
        assert quick_model_check(parse_ptl("G !p"))

    def test_quick_rejects_obligation(self):
        assert not quick_model_check(parse_ptl("F p"))

    @given(formula=ptl_formulas())
    @settings(max_examples=200, deadline=None)
    def test_quick_equals_lasso_evaluation(self, formula):
        """The memoized collapse rules equal exact evaluation on the
        all-false lasso — the model they are derived from."""
        from repro.ptl.lasso import evaluate_lasso
        from repro.ptl.sat import _EMPTY_LASSO

        assert quick_model_check(formula) == evaluate_lasso(
            formula, _EMPTY_LASSO
        )

    @given(formula=ptl_formulas())
    @settings(max_examples=150, deadline=None)
    def test_quick_never_changes_answers(self, formula):
        assert is_satisfiable(formula, quick=True) == is_satisfiable(
            formula, quick=False
        )

    @given(formula=ptl_formulas())
    @settings(max_examples=100, deadline=None)
    def test_quick_positive_implies_satisfiable(self, formula):
        if quick_model_check(formula):
            assert is_satisfiable(formula)


class TestDualities:
    @given(formula=ptl_formulas())
    @settings(max_examples=100, deadline=None)
    def test_excluded_middle_of_satisfiability(self, formula):
        # f unsatisfiable implies !f valid, and vice versa.
        if not is_satisfiable(formula):
            assert is_valid(pnot(formula))

    @given(formula=ptl_formulas())
    @settings(max_examples=60, deadline=None)
    def test_equivalence_reflexive(self, formula):
        assert equivalent(formula, formula)
