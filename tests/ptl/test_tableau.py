"""Tests for the atom-graph tableau and engine cross-validation (A2's
correctness basis): the two independently implemented satisfiability
engines must agree on every formula."""

import pytest
from hypothesis import given, settings

from repro.ptl import (
    build_tableau,
    is_satisfiable_buchi,
    is_satisfiable_tableau,
    parse_ptl,
)

from ..conftest import ptl_formulas


class TestTableau:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("p", True),
            ("p & !p", False),
            ("G (p -> X q)", True),
            ("(p U q) & G !q", False),
            ("G F p & G F !p", True),
            ("F G p & G F !p", False),
        ],
    )
    def test_known_cases(self, text, expected):
        assert is_satisfiable_tableau(parse_ptl(text)) is expected

    def test_base_limit_enforced(self):
        # 20 distinct temporal subformulas exceed the default max_base.
        parts = " & ".join(f"(p{i} U q{i})" for i in range(20))
        with pytest.raises(ValueError, match="max_base"):
            is_satisfiable_tableau(parse_ptl(parts))

    def test_tableau_of_true(self):
        from repro.ptl import PTRUE

        assert not build_tableau(PTRUE).is_empty()

    def test_tableau_of_false(self):
        from repro.ptl import PFALSE

        assert build_tableau(PFALSE).is_empty()


class TestEnginesAgree:
    @given(formula=ptl_formulas())
    @settings(max_examples=250, deadline=None)
    def test_buchi_equals_tableau(self, formula):
        assert is_satisfiable_buchi(formula) == is_satisfiable_tableau(
            formula
        )

    @pytest.mark.parametrize("seed", range(25))
    def test_on_generated_formulas(self, seed):
        from repro.workloads import PTLConfig, random_ptl

        formula = random_ptl(PTLConfig(size=8, propositions=3, seed=seed))
        assert is_satisfiable_buchi(formula) == is_satisfiable_tableau(
            formula
        )
