"""Smoke tests for the public API surface and the CLI."""

import json

import pytest

import repro
from repro.cli import main


class TestPublicAPI:
    def test_all_exports_exist(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    def test_one_line_workflow(self):
        schema = repro.vocabulary({"Sub": 1})
        once = repro.parse("forall x . G (Sub(x) -> X G !Sub(x))")
        history = repro.History.from_facts(
            schema, [[("Sub", (1,))], [("Sub", (1,))]]
        )
        assert not repro.check_extension(once, history).potentially_satisfied

    def test_subpackage_exports(self):
        from repro import database, eval, logic, pasteval, ptl, turing

        assert logic.parse and ptl.is_satisfiable and database.History
        assert eval.evaluate_finite and pasteval.IncrementalPastEvaluator
        assert turing.build_phi


@pytest.fixture
def history_file(tmp_path):
    payload = {
        "vocabulary": {"predicates": {"Sub": 1}, "constants": []},
        "constant_bindings": {},
        "states": [{"Sub": [[1]]}, {}, {"Sub": [[1]]}],
    }
    path = tmp_path / "history.json"
    path.write_text(json.dumps(payload))
    return str(path)


class TestCLI:
    def test_check_violated_exit_code(self, history_file, capsys):
        code = main(
            ["check", "forall x . G (Sub(x) -> X G !Sub(x))", history_file]
        )
        assert code == 1
        assert "VIOLATED" in capsys.readouterr().out

    def test_check_satisfied(self, history_file, tmp_path, capsys):
        clean = tmp_path / "clean.json"
        clean.write_text(
            json.dumps(
                {
                    "vocabulary": {"predicates": {"Sub": 1}, "constants": []},
                    "states": [{"Sub": [[1]]}],
                }
            )
        )
        code = main(
            ["check", "forall x . G (Sub(x) -> X G !Sub(x))", str(clean)]
        )
        assert code == 0
        assert "POTENTIALLY SATISFIED" in capsys.readouterr().out

    def test_classify_output(self, capsys):
        code = main(["classify", "forall x . G (Sub(x) -> X G !Sub(x))"])
        assert code == 0
        out = capsys.readouterr().out
        assert "universal:            True" in out
        assert "decidable" in out

    def test_classify_undecidable_fragment(self, capsys):
        code = main(["classify", "forall x . G (exists y . q(x, y))"])
        assert code == 0
        assert "undecidable" in capsys.readouterr().out

    def test_monitor(self, history_file, capsys):
        code = main(
            [
                "monitor",
                history_file,
                "--constraint",
                "forall x . G (Sub(x) -> X G !Sub(x))",
            ]
        )
        assert code == 1
        assert "violated" in capsys.readouterr().out

    def test_parse_error_reported(self, history_file, capsys):
        code = main(["check", "forall x .", history_file])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_experiment(self, capsys):
        code = main(["experiment", "e99"])
        assert code == 2
