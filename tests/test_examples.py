"""Smoke tests: every shipped example runs and prints what it promises."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run_example(name, capsys):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = _run_example("quickstart", capsys)
    assert "good history potentially satisfied: True" in out
    assert "bad history potentially satisfied: False" in out
    assert "witness extension verified: True" in out


def test_orders_queue(capsys):
    out = _run_example("orders_queue", capsys)
    assert "VIOLATION" in out
    assert "fifo_fill" in out


def test_triggers_demo(capsys):
    out = _run_example("triggers_demo", capsys)
    assert "'resubmitted' fired" in out
    assert "'double_fill' fired" in out


def test_safety_analysis(capsys):
    out = _run_example("safety_analysis", capsys)
    assert "NotSafetyError" in out
    assert "WRONG" in out
    # The closing set-level semantic analysis catches the seeded pair.
    assert "TIC110" in out
    assert "subsumed by constraint 'fill_once'" in out
    assert "TIC100" in out
    assert "kernel decision(s)" in out


@pytest.mark.slow
def test_turing_undecidability(capsys):
    out = _run_example("turing_undecidability", capsys)
    assert "valid encoding: True" in out
    assert "HALTED (definitely not repeating)" in out
    assert "origin visits certified" in out
