"""Integration tests: the experiment runners reproduce the paper's shapes.

Each test runs a (further reduced) version of an experiment and asserts
the qualitative claim — linearity, exponential growth, who-wins — rather
than absolute numbers.  These are the checks EXPERIMENTS.md is built on.
"""

from repro.experiments import (
    RUNNERS,
    a1_incremental,
    a3_domain_restriction,
    e1_history_length,
    e3_ptl_phases,
    e4_turing,
    e5_sat_reduction,
    e7_detection_latency,
    e9_w_ordering,
)


class TestRunnerRegistry:
    def test_all_experiments_registered(self):
        assert set(RUNNERS) == {
            "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9",
            "a1", "a2", "a3",
        }


class TestE1Linear:
    def test_growth_is_at_most_linear(self, capsys):
        rows = e1_history_length.run(fast=True)
        capsys.readouterr()
        first, last = rows[0], rows[-1]
        length_ratio = last["t"] / first["t"]
        time_ratio = last["seconds"] / first["seconds"]
        # Linear in t (with generous headroom for timing noise at the
        # small end): total time must not grow super-linearly.
        assert time_ratio <= 3 * length_ratio


class TestE3Phases:
    def test_progression_linear_sat_flat(self, capsys):
        rows = e3_ptl_phases.run(fast=True)
        capsys.readouterr()
        prefix_rows = [r for r in rows if r["sweep"] == "prefix"]
        # 16x more prefix => at least 4x more progression time.
        assert prefix_rows[-1]["progress_s"] > 4 * prefix_rows[0][
            "progress_s"
        ]
        # ... while satisfiability stays within noise (same remainder).
        sats = [r["sat_s"] for r in prefix_rows]
        assert max(sats) <= 20 * min(s for s in sats if s > 0)

    def test_sat_grows_with_formula(self, capsys):
        rows = e3_ptl_phases.run(fast=True)
        capsys.readouterr()
        formula_rows = [r for r in rows if r["sweep"] == "formula"]
        assert formula_rows[-1]["sat_s"] > 5 * formula_rows[0]["sat_s"]


class TestE4Footprint:
    def test_ground_truth_patterns(self, capsys):
        rows = e4_turing.run(fast=True)
        capsys.readouterr()
        by_machine = {
            (row["machine"], row["word"]): row
            for row in rows
            if "machine" in row
        }
        # Repeating input: visits grow across budgets.
        repeating = by_machine[("parity", "1001")]
        budgets = sorted(
            int(key.split("@")[1])
            for key in repeating
            if key.startswith("visits@")
        )
        visits = [repeating[f"visits@{b}"] for b in budgets]
        assert visits == sorted(visits) and visits[-1] > visits[0]
        # Halting input: definitive.
        assert by_machine[("parity", "100")][f"visits@{budgets[0]}"] == "HALT"
        # Runaway: frozen at 1, never halting.
        runaway = by_machine[("runaway", "01")]
        assert all(runaway[f"visits@{b}"] == 1 for b in budgets)


class TestE5Exponential:
    def test_doubling_per_variable(self, capsys):
        rows = e5_sat_reduction.run(fast=True)
        capsys.readouterr()
        unsat = {row["n"]: row for row in rows if row["instance"] == "unsat"}
        ns = sorted(unsat)
        for smaller, larger in zip(ns, ns[1:]):
            assert (
                unsat[larger]["assignments"]
                == unsat[smaller]["assignments"] * 4  # n steps by 2
            )
        # |D0| stays linear.
        assert unsat[ns[-1]]["|D0| facts"] < 10 * ns[-1]


class TestE7Latency:
    def test_exact_never_later_and_gaps_grow(self, capsys):
        rows = e7_detection_latency.run(fast=True)
        capsys.readouterr()
        gaps = []
        for row in rows:
            if isinstance(row["latency gap"], int):
                assert row["latency gap"] >= 0
                if row["scenario"].startswith("forced"):
                    gaps.append(row["latency gap"])
        assert gaps == sorted(gaps) and gaps[-1] > gaps[0]


class TestE9Checks:
    def test_all_checks_pass(self, capsys):
        rows = e9_w_ordering.run(fast=True)
        capsys.readouterr()
        by_check = {row["check"]: row["result"] for row in rows}
        assert by_check[
            "finite-universe formula (W4 + Q chain) is universal"
        ] is True
        assert by_check["... but fails the safety recognizer"] is True


class TestA1Strategies:
    def test_spare_beats_scratch_on_growing_domains(self, capsys):
        rows = a1_incremental.run(fast=True)
        capsys.readouterr()
        growing = {
            row["strategy"]: row for row in rows if row["regime"] == "growing"
        }
        assert growing["spare"]["regrounds"] < growing["scratch"]["regrounds"]
        assert (
            growing["spare"]["progressions"]
            < growing["scratch"]["progressions"]
        )


class TestA3Scopes:
    def test_constraint_scope_flat_full_scope_grows(self, capsys):
        rows = a3_domain_restriction.run(fast=True)
        capsys.readouterr()
        assert rows[-1]["full s"] > 5 * rows[0]["full s"]
        assert rows[-1]["constraint |M|"] == rows[0]["constraint |M|"]
