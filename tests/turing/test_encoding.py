"""Tests for the configuration <-> database-state encoding."""

import pytest

from repro.errors import MachineError
from repro.turing import (
    Configuration,
    MachineEncoding,
    bouncer,
    check_encoding,
    origin_visits,
    parity,
    runaway,
)


@pytest.fixture
def enc():
    return MachineEncoding.for_machine(parity())


class TestVocabulary:
    def test_one_predicate_per_state_and_symbol(self, enc):
        machine = parity()
        expected = len(machine.states) + len(machine.tape_alphabet) - 1
        assert len(enc.vocabulary.predicates) == expected

    def test_blank_has_no_predicate(self, enc):
        assert enc.predicate_for("B") is None

    def test_unknown_symbol_rejected(self, enc):
        with pytest.raises(MachineError):
            enc.predicate_for("??")


class TestRoundTrip:
    def test_configuration_roundtrip(self, enc):
        c = Configuration(state="even", cells=("0", "1", "0"), head=2)
        state = enc.encode_configuration(c)
        assert enc.decode_state(state) == c

    @pytest.mark.parametrize("word", ["", "0", "11", "0101"])
    def test_run_roundtrip(self, enc, word):
        history, result = enc.encode_run(word, steps=10)
        decoded = enc.decode_history(history)
        assert decoded == result.configurations

    def test_padding_does_not_change_decoding(self, enc):
        c = Configuration.initial(parity(), "01")
        narrow = enc.encode_configuration(c)
        wide = enc.encode_configuration(c, length=20)
        assert enc.decode_state(narrow) == enc.decode_state(wide)

    def test_clashing_state_rejected(self, enc):
        c = Configuration.initial(parity(), "0")
        state = enc.encode_configuration(c).with_facts([("T_1", (0,))])
        with pytest.raises(MachineError, match="two symbols"):
            enc.decode_state(state)

    def test_empty_state_rejected(self, enc):
        from repro.database import DatabaseState

        with pytest.raises(MachineError):
            enc.decode_state(DatabaseState.empty(enc.vocabulary))


class TestCheckEncoding:
    @pytest.mark.parametrize(
        "maker,word", [(runaway, "01"), (bouncer, "1"), (parity, "11")]
    )
    def test_valid_runs_pass(self, maker, word):
        machine = maker()
        encoding = MachineEncoding.for_machine(machine)
        history, _ = encoding.encode_run(word, steps=25)
        assert check_encoding(history, encoding).ok

    def test_corrupted_transition_detected(self, enc):
        from repro.database import History

        history, _ = enc.encode_run("11", steps=6)
        states = list(history.states)
        # Flip a blank cell to a tape symbol mid-run: breaks a window rule.
        states[3] = states[3].with_facts([("T_1", (9,))])
        bad = History(vocabulary=history.vocabulary, states=tuple(states))
        report = check_encoding(bad, enc)
        assert not report.ok and not report.transitions

    def test_bad_initial_configuration_detected(self, enc):
        from repro.database import DatabaseState, History

        # State 0 does not start with the initial control state.
        state0 = DatabaseState.from_facts(
            enc.vocabulary, [("T_0", (0,))]
        )
        bad = History(vocabulary=enc.vocabulary, states=(state0,))
        report = check_encoding(bad, enc)
        assert not report.ok and not report.initial

    def test_continuing_past_halt_detected(self):
        from repro.database import History
        from repro.turing import halter

        machine = halter()
        encoding = MachineEncoding.for_machine(machine)
        history, result = encoding.encode_run("0", steps=5)
        assert result.halted
        # Append a copy of the last state: the machine halted, so no
        # successor configuration is legal.
        bad = History(
            vocabulary=history.vocabulary,
            states=history.states + (history.states[-1],),
        )
        report = check_encoding(bad, encoding)
        assert not report.ok
        assert "no legal successor" in report.detail

    def test_origin_visits_counted(self, enc):
        history, result = enc.encode_run("11", steps=30)
        assert origin_visits(history, enc) == result.origin_visits

    def test_evaluation_domain_covers_positions(self, enc):
        history, _ = enc.encode_run("101", steps=5)
        domain = enc.evaluation_domain(history)
        assert max(history.relevant_elements()) + 2 in domain
