"""Tests for the Proposition 3.1 formula and its cross-validation against
the direct checker and the generic evaluator."""

import pytest

from repro.database import History
from repro.eval import evaluate_finite
from repro.logic.classify import classify
from repro.turing import (
    HALT,
    MachineEncoding,
    build_phi,
    check_encoding,
    halter,
    next_symbol,
    parity,
    runaway,
    window_rules,
)


class TestWindowRules:
    def test_frame_rule(self):
        m = runaway()
        assert next_symbol(m, "0", "1", "0", "B") == "1"

    def test_head_writes_and_moves_right(self):
        m = runaway()  # (q0, s) -> (q0, s, R)
        # Window centred on the head: q0 scanning '1'.
        assert next_symbol(m, "0", "q0", "1", "B") == "1"  # writes scanned
        # Position right of the head receives the state.
        assert next_symbol(m, "0", "1", "q0", "1") == "1"

    def test_state_enters_from_left(self):
        m = runaway()
        # Window (q0, s, d): position of s gets the new state for R moves.
        assert next_symbol(m, "q0", "1", "0", "B") == "q0"

    def test_halt_detected(self):
        m = halter()
        assert next_symbol(m, None, "q0", "0", "B") == HALT

    def test_left_move_uses_left_neighbour(self):
        m = parity()  # ("back", sym) -> ("back", sym, L)
        assert next_symbol(m, "0", "back", "1", "B") == "0"

    def test_rules_skip_double_state_windows(self):
        m = parity()
        for window, _effect in window_rules(m, interior=True):
            states = sum(1 for s in window if s in m.states)
            assert states <= 1

    def test_origin_windows_are_triples(self):
        m = runaway()
        for window, _effect in window_rules(m, interior=False):
            assert len(window) == 3


class TestPhiShape:
    def test_phi_is_universal(self):
        enc = MachineEncoding.for_machine(runaway())
        phi = build_phi(enc).conjunction()
        info = classify(phi)
        assert info.is_universal
        assert len(info.external_universals) == 4

    def test_safety_part_lacks_eventuality(self):
        from repro.logic import is_syntactically_safe

        enc = MachineEncoding.for_machine(runaway())
        phi = build_phi(enc)
        assert is_syntactically_safe(phi.safety_part())
        assert not is_syntactically_safe(phi.conjunction())

    def test_repeating_conjunct_mentions_zero(self):
        enc = MachineEncoding.for_machine(runaway())
        phi = build_phi(enc)
        assert ("Zero", 1) in phi.repeating.predicates()


@pytest.mark.slow
class TestPhiAgainstEvaluator:
    """The generic FOTL evaluator agrees with the direct checker on the
    safety part of phi (small instances only: the evaluator is
    |domain|^4 per window rule)."""

    def test_valid_encoding_satisfies_phi(self):
        enc = MachineEncoding.for_machine(runaway())
        phi = build_phi(enc)
        history, _ = enc.encode_run("1", steps=2)
        domain = enc.evaluation_domain(history)
        assert evaluate_finite(
            phi.safety_part(), history, future="weak", domain=domain
        )
        assert check_encoding(history, enc).ok

    def test_corrupted_encoding_violates_phi(self):
        enc = MachineEncoding.for_machine(runaway())
        phi = build_phi(enc)
        history, _ = enc.encode_run("1", steps=2)
        domain = enc.evaluation_domain(history)
        states = list(history.states)
        states[2] = states[2].with_facts([("T_1", (1,))])
        bad = History(vocabulary=history.vocabulary, states=tuple(states))
        assert not evaluate_finite(
            phi.safety_part(), bad, future="weak", domain=domain
        )
        assert not check_encoding(bad, enc).ok

    def test_initial_conjunct_rejects_gap(self):
        from repro.database import DatabaseState

        enc = MachineEncoding.for_machine(runaway())
        phi = build_phi(enc)
        # q0 at 0, input at 1, blank gap at 2, input at 3: not contiguous.
        state0 = DatabaseState.from_facts(
            enc.vocabulary,
            [("S_q0", (0,)), ("T_1", (1,)), ("T_0", (3,))],
        )
        history = History(vocabulary=enc.vocabulary, states=(state0,))
        domain = frozenset(range(6))
        assert not evaluate_finite(
            phi.initial, history, future="weak", domain=domain
        )
