"""Tests for the Turing machine simulator."""

import pytest

from repro.errors import MachineError
from repro.turing import (
    BLANK,
    Configuration,
    Transition,
    TuringMachine,
    bouncer,
    halter,
    parity,
    run,
    runaway,
    step,
    trace,
)


class TestDefinitions:
    def test_blank_required(self):
        with pytest.raises(MachineError, match="blank"):
            TuringMachine(
                name="m",
                states=frozenset({"q"}),
                initial="q",
                transitions={},
                tape_alphabet=frozenset({"0", "1"}),
            )

    def test_initial_must_be_declared(self):
        with pytest.raises(MachineError):
            TuringMachine(
                name="m",
                states=frozenset({"q"}),
                initial="r",
                transitions={},
                tape_alphabet=frozenset({BLANK}),
            )

    def test_states_and_symbols_disjoint(self):
        with pytest.raises(MachineError, match="disjoint"):
            TuringMachine(
                name="m",
                states=frozenset({"0"}),
                initial="0",
                transitions={},
                tape_alphabet=frozenset({"0", BLANK}),
            )

    def test_bad_move_rejected(self):
        with pytest.raises(MachineError):
            Transition("q", "0", "UP")

    def test_transition_consistency_checked(self):
        with pytest.raises(MachineError):
            TuringMachine(
                name="m",
                states=frozenset({"q"}),
                initial="q",
                transitions={("q", "9"): Transition("q", "0", "R")},
                tape_alphabet=frozenset({"0", BLANK}),
            )


class TestConfigurations:
    def test_initial_configuration(self):
        c = Configuration.initial(runaway(), "01")
        assert c.state == "q0" and c.head == 0
        assert c.cells == ("0", "1")

    def test_bad_input_alphabet(self):
        with pytest.raises(MachineError):
            Configuration.initial(runaway(), "0x1")

    def test_string_inserts_state_before_scanned(self):
        c = Configuration(state="q", cells=("a", "b"), head=1)
        # tape: a b..., head on b; string: a q b
        assert c.string()[:3] == ("a", "q", "b")

    def test_string_at_origin(self):
        c = Configuration.initial(runaway(), "10")
        assert c.string()[:3] == ("q0", "1", "0")

    def test_string_roundtrip(self):
        m = runaway()
        c = Configuration(state="q0", cells=("0", "1", "0"), head=2)
        assert Configuration.from_string(c.string(), m) == c

    def test_from_string_requires_one_state(self):
        with pytest.raises(MachineError):
            Configuration.from_string(("0", "1"), runaway())
        with pytest.raises(MachineError):
            Configuration.from_string(("q0", "q0"), runaway())


class TestStepping:
    def test_halter_halts(self):
        c = Configuration.initial(halter(), "0")
        assert step(halter(), c) is None

    def test_runaway_moves_right(self):
        m = runaway()
        c = Configuration.initial(m, "1")
        c2 = step(m, c)
        assert c2.head == 1 and c2.state == "q0"

    def test_run_statistics_halting(self):
        result = run(halter(), "0101", max_steps=100)
        assert result.halted
        assert result.steps == 0
        assert result.origin_visits == 1

    def test_run_statistics_runaway(self):
        result = run(runaway(), "01", max_steps=50)
        assert not result.halted
        assert result.steps == 50
        assert result.origin_visits == 1  # only the initial configuration

    def test_trace_generator(self):
        configs = list(trace(runaway(), "0", steps=3))
        assert len(configs) == 4
        assert [c.head for c in configs] == [0, 1, 2, 3]


class TestZooBehaviour:
    def test_bouncer_repeats_on_everything(self):
        for word in ("", "0", "10", "0101"):
            result = run(bouncer(), word, max_steps=200)
            assert not result.halted
            assert result.origin_visits > 5

    def test_parity_even_repeats(self):
        result = run(parity(), "11", max_steps=200)
        assert not result.halted
        assert result.origin_visits > 5

    def test_parity_odd_halts(self):
        result = run(parity(), "1", max_steps=200)
        assert result.halted

    def test_parity_empty_word_is_even(self):
        result = run(parity(), "", max_steps=100)
        assert not result.halted
        assert result.origin_visits > 2

    @pytest.mark.parametrize("word", ["", "0", "1", "11", "101", "0110"])
    def test_parity_matches_ground_truth(self, word):
        from repro.turing import is_repeating_parity

        result = run(parity(), word, max_steps=500)
        if is_repeating_parity(word):
            assert not result.halted
            assert result.origin_visits >= 3
        else:
            assert result.halted

    def test_no_left_move_at_origin(self):
        # The zoo machines mark the origin; 300 steps must never crash.
        for maker in (bouncer, parity, runaway, halter):
            run(maker(), "0110", max_steps=300)
