"""Tests for the bounded semi-decision procedures and the W construction."""

import pytest

from repro.database import History
from repro.logic.classify import classify
from repro.logic.safety import is_syntactically_safe
from repro.turing import (
    MachineEncoding,
    Verdict,
    bounded_extension_search,
    bounded_repeating,
    build_phi_tilde,
    finite_universe_formula,
    halter,
    parity,
    visit_growth,
    w1,
    w2,
    w3,
    w4,
)


@pytest.fixture
def enc():
    return MachineEncoding.for_machine(parity())


class TestBoundedRepeating:
    def test_halting_is_definitive(self):
        outcome = bounded_repeating(parity(), "1", max_steps=200)
        assert outcome.verdict is Verdict.NOT_REPEATING

    def test_repeating_gives_growing_evidence(self):
        small = bounded_repeating(parity(), "11", max_steps=50)
        large = bounded_repeating(parity(), "11", max_steps=500)
        assert small.verdict is Verdict.EVIDENCE
        assert large.origin_visits > small.origin_visits

    def test_visit_growth_series(self):
        rows = visit_growth(parity(), "1001", [20, 100, 300])
        budgets = [row[0] for row in rows]
        visits = [row[1] for row in rows]
        assert budgets == [20, 100, 300]
        assert visits == sorted(visits)
        assert not any(row[2] for row in rows)  # never halts

    def test_visit_growth_freezes_on_halting(self):
        rows = visit_growth(halter(), "0", [10, 50])
        assert all(row[2] for row in rows)


class TestBoundedExtensionSearch:
    def test_prolongs_to_target(self, enc):
        history, _ = enc.encode_run("1001", steps=3)
        outcome = bounded_extension_search(
            history, enc, target_visits=8, max_steps=5000
        )
        assert outcome.verdict is Verdict.EVIDENCE
        assert outcome.origin_visits >= 8

    def test_halting_word_cannot_reach_target(self, enc):
        history, _ = enc.encode_run("1", steps=2)
        outcome = bounded_extension_search(
            history, enc, target_visits=5, max_steps=5000
        )
        assert outcome.verdict is Verdict.NOT_REPEATING

    def test_invalid_history_rejected(self, enc):
        history, _ = enc.encode_run("11", steps=4)
        states = list(history.states)
        states[1] = states[1].with_facts([("T_0", (30,))])
        bad = History(vocabulary=history.vocabulary, states=tuple(states))
        outcome = bounded_extension_search(
            bad, enc, target_visits=3, max_steps=100
        )
        assert outcome.verdict is Verdict.INVALID

    def test_budget_exhaustion_reports_partial(self, enc):
        history, _ = enc.encode_run("1111", steps=1)
        outcome = bounded_extension_search(
            history, enc, target_visits=10_000, max_steps=50
        )
        assert outcome.verdict is Verdict.EVIDENCE
        assert outcome.origin_visits < 10_000
        assert outcome.steps_used == 50


class TestWOrdering:
    def test_w_formulas_are_universal(self):
        assert classify(w1()).is_universal
        assert classify(w3()).is_universal

    def test_w2_has_internal_existential(self):
        info = classify(w2())
        assert info.is_biquantified
        assert info.internal_quantifiers == 1

    def test_phi_tilde_is_the_undecidable_class(self, enc):
        tilde = build_phi_tilde(enc).conjunction()
        info = classify(tilde)
        assert info.is_biquantified
        assert not info.is_universal
        assert info.internal_quantifiers == 1
        assert info.internal_sigma_level == 1

    def test_phi_tilde_uses_only_monadic_predicates(self, enc):
        tilde = build_phi_tilde(enc).conjunction()
        assert all(arity == 1 for _name, arity in tilde.predicates())

    def test_phi_tilde_has_no_builtins(self, enc):
        tilde = build_phi_tilde(enc).conjunction()
        names = {name for name, _arity in tilde.predicates()}
        assert not (names & {"leq", "succ", "Zero"})

    def test_w_ordering_semantics_on_explicit_database(self):
        """W enumerating 0,1,2 makes x <=_W y match the real order."""
        from repro.database import vocabulary
        from repro.eval import evaluate_lasso_db
        from repro.database import LassoDatabase

        v = vocabulary({"W": 1})
        h = History.from_facts(
            v, [[("W", (0,))], [("W", (1,))], [("W", (2,))]]
        )
        db = LassoDatabase(
            vocabulary=v, stem=h.states, loop=(h.states[-1].without_facts(
                [("W", (2,))]
            ),)
        )
        from repro.turing import leq_w, succ_w
        from repro.logic.terms import Variable

        x, y = Variable("x"), Variable("y")
        # 0 <=_W 2 holds; 2 <=_W 0 does not.
        from repro.eval import evaluate_lasso_db

        assert evaluate_lasso_db(
            leq_w(x, y), db, valuation={x: 0, y: 2}
        )
        assert not evaluate_lasso_db(
            leq_w(x, y), db, valuation={x: 2, y: 0}
        )
        assert evaluate_lasso_db(succ_w(x, y), db, valuation={x: 1, y: 2})
        assert not evaluate_lasso_db(
            succ_w(x, y), db, valuation={x: 0, y: 2}
        )


class TestFiniteUniverseExample:
    def test_universal_but_not_safety(self):
        f = finite_universe_formula()
        assert classify(f).is_universal
        assert not is_syntactically_safe(f)

    def test_w4_demands_every_element(self):
        info = classify(w4())
        assert info.is_universal

    def test_no_lasso_model_exists(self):
        """W2-style enumeration of the whole universe cannot live on a
        lasso with finitely many elements; the checker (forced past the
        safety gate) correctly reports no extension from the empty
        history."""
        from repro.core import check_extension
        from repro.database import History, vocabulary

        v = vocabulary({"W": 1, "Q": 1})
        h = History.empty(v)
        result = check_extension(
            finite_universe_formula(), h, assume_safety=True
        )
        # Ground truth here: the formula has no infinite-universe model at
        # all (the paper's point), so "not potentially satisfied" is right.
        assert not result.potentially_satisfied
