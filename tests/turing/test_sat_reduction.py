"""Tests for the Section 6 SAT reduction."""

import random

import pytest

from repro.errors import StateError
from repro.eval import evaluate_finite
from repro.logic.classify import classify
from repro.logic.safety import is_syntactically_safe
from repro.turing.sat_reduction import (
    CNF,
    SAT_VOCABULARY,
    build_initial_state,
    build_sat_formula,
    decide_extension,
    instance_elements,
    simulate_history,
)


def random_cnf(rng, max_vars=3, max_clauses=3):
    n = rng.randint(1, max_vars)
    m = rng.randint(1, max_clauses)
    clauses = []
    for _ in range(m):
        size = rng.randint(1, n)
        chosen = rng.sample(range(1, n + 1), size)
        clauses.append(
            tuple(v if rng.random() < 0.5 else -v for v in chosen)
        )
    return CNF(n, tuple(clauses))


class TestCNF:
    def test_validation(self):
        with pytest.raises(StateError):
            CNF(0, ((1,),))
        with pytest.raises(StateError):
            CNF(2, ())
        with pytest.raises(StateError):
            CNF(2, ((3,),))
        with pytest.raises(StateError):
            CNF(2, ((0,),))

    def test_brute_force(self):
        assert CNF(1, ((1,),)).brute_force_satisfiable()
        assert not CNF(1, ((1,), (-1,))).brute_force_satisfiable()
        assert CNF(2, ((1, -2), (-1, 2))).brute_force_satisfiable()


class TestFormula:
    def test_fixed_formula_is_universal_safety(self):
        f = build_sat_formula()
        info = classify(f)
        assert info.is_universal
        assert len(info.external_universals) == 4
        assert is_syntactically_safe(f)

    def test_formula_is_instance_independent(self):
        assert build_sat_formula() == build_sat_formula()


class TestInitialState:
    def test_element_layout(self):
        cnf = CNF(2, ((1,), (-2,)))
        unit, variables, clauses = instance_elements(cnf)
        assert unit == 0
        assert variables == (1, 2)
        assert clauses == (3, 4)

    def test_d0_encodes_clauses(self):
        cnf = CNF(2, ((1, -2),))
        d0 = build_initial_state(cnf)
        assert d0.holds("Pos", (3, 1))
        assert d0.holds("Neg", (3, 2))
        assert d0.holds("Scan", (0,))
        assert d0.holds("Carry", (1,))
        assert not d0.holds("Val", (1,))

    def test_d0_size_linear_in_instance(self):
        small = build_initial_state(CNF(2, ((1,),)))
        large = build_initial_state(
            CNF(6, tuple((v,) for v in range(1, 7)))
        )
        assert large.fact_count() > small.fact_count()


class TestDecision:
    @pytest.mark.parametrize("seed", range(40))
    def test_matches_brute_force(self, seed):
        rng = random.Random(seed)
        cnf = random_cnf(rng)
        outcome = decide_extension(cnf)
        assert outcome.satisfiable == cnf.brute_force_satisfiable()

    def test_witness_satisfies_cnf(self):
        cnf = CNF(3, ((1, -2), (-1, 3), (2, 3)))
        outcome = decide_extension(cnf)
        assert outcome.satisfiable
        witness = outcome.witness
        for clause in cnf.clauses:
            assert any(
                witness[abs(lit)] == (lit > 0) for lit in clause
            )

    def test_unsat_explores_all_assignments(self):
        cnf = CNF(3, ((1,), (-1,)))
        outcome = decide_extension(cnf)
        assert not outcome.satisfiable
        assert outcome.assignments_tried == 8

    def test_exponential_step_growth(self):
        # All-positive unit clauses force the search to the very last
        # assignment: steps grow ~2^n.
        steps = []
        for n in (2, 4, 6):
            cnf = CNF(n, tuple((v,) for v in range(1, n + 1)))
            steps.append(decide_extension(cnf).steps)
        assert steps[1] > 3 * steps[0]
        assert steps[2] > 3 * steps[1]


class TestFormulaSimulatorAgreement:
    @pytest.mark.parametrize("seed", range(6))
    def test_rules_hold_on_simulated_runs(self, seed):
        rng = random.Random(seed + 100)
        cnf = random_cnf(rng, max_vars=2, max_clauses=2)
        formula = build_sat_formula()
        history = simulate_history(cnf, steps=12)
        domain = frozenset(
            range(0, 3 + cnf.num_vars + len(cnf.clauses))
        )
        assert evaluate_finite(
            formula, history, future="weak", domain=domain
        )

    def test_rules_reject_corrupted_run(self):
        from repro.database import History

        cnf = CNF(2, ((1, -2), (-1,)))
        formula = build_sat_formula()
        history = simulate_history(cnf, steps=6)
        states = list(history.states)
        states[1] = states[1].with_facts([("Val", (1,))])
        bad = History(vocabulary=SAT_VOCABULARY, states=tuple(states))
        assert not evaluate_finite(
            formula, bad, future="weak", domain=frozenset(range(8))
        )

    def test_done_state_loops_forever(self):
        cnf = CNF(1, ((-1,),))  # satisfied by the all-zeros assignment
        history = simulate_history(cnf, steps=8)
        # Once Done, the state freezes.
        assert history.states[-1] == history.states[-2]
        assert history.states[-1].holds("Done", (0,))
