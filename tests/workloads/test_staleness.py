"""Staleness-budget workload: compilation, routing, and detection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.hierarchy import HierarchyClass, classify_hierarchy
from repro.core import PlannedMonitor, plan_constraints
from repro.database import History
from repro.logic import parse, to_str
from repro.service import MonitorService
from repro.workloads import (
    StalenessSpec,
    StalenessWorkloadConfig,
    clean_staleness_trace,
    fresh_use,
    generate_staleness,
    refresh_deadline,
    staleness_constraints,
    staleness_predicates,
    staleness_vocabulary,
    trace_with_stale_use,
)


class TestCompilation:
    def test_predicates_capitalize_field(self):
        assert staleness_predicates("price") == (
            "PriceStamp", "PriceUse", "PriceDrop",
        )

    def test_fresh_use_is_past_closed(self):
        info = classify_hierarchy(fresh_use("price", 2))
        assert info.cls is HierarchyClass.PAST_CLOSED

    def test_refresh_deadline_is_safety(self):
        info = classify_hierarchy(refresh_deadline("price", 2))
        assert info.cls is HierarchyClass.SAFETY

    def test_zero_budget_compiles_to_ban(self):
        formula = refresh_deadline("price", 0)
        assert to_str(formula) == to_str(
            parse("forall x . G (PriceStamp(x) -> false)")
        )

    def test_formula_size_linear_in_budget(self):
        sizes = [fresh_use("price", b).size() for b in (1, 2, 4, 8)]
        deltas = [b - a for a, b in zip(sizes, sizes[1:])]
        assert deltas[0] > 0
        # Each extra budget instant adds a constant-size Y-window.
        assert deltas[1] == 2 * deltas[0]
        assert deltas[2] == 4 * deltas[0]

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            fresh_use("price", -1)
        with pytest.raises(ValueError):
            StalenessSpec("price", -1)

    def test_planner_routes_both_forms(self):
        plan = plan_constraints(
            staleness_constraints((StalenessSpec("price", 2),))
        )
        assert plan["fresh_use_price"].backend == "pasteval"
        assert plan["refresh_deadline_price"].backend == (
            "progression-safety"
        )


class TestGenerator:
    @settings(max_examples=15, deadline=None)
    @given(
        budget=st.integers(1, 3),
        length=st.integers(5, 25),
        seed=st.integers(0, 50),
    )
    def test_clean_trace_satisfies_both_forms(self, budget, length, seed):
        trace = generate_staleness(
            StalenessWorkloadConfig(
                specs=(StalenessSpec("price", budget),),
                length=length,
                seed=seed,
            )
        )
        monitor = PlannedMonitor(
            staleness_constraints((StalenessSpec("price", budget),)),
            History.empty(trace.vocabulary),
        )
        for state in trace.states():
            monitor.append_state(state)
        assert monitor.violations() == {}

    def test_injected_stale_use_is_detected(self):
        trace = trace_with_stale_use(length=20, budget=2, at=12)
        assert trace.stale_uses == [(12, "price", 3)]
        monitor = PlannedMonitor(
            staleness_constraints((StalenessSpec("price", 2),)),
            History.empty(trace.vocabulary),
        )
        for state in trace.states():
            monitor.append_state(state)
        # The monitor starts one instant before the trace (the empty
        # initial state), so detection lands at trace instant + 1.
        assert monitor.violations() == {"fresh_use_price": 13}

    def test_generator_rejects_zero_budget(self):
        with pytest.raises(ValueError, match="budget"):
            clean_staleness_trace(budget=0)

    def test_multi_field_vocabulary(self):
        specs = (StalenessSpec("price", 1), StalenessSpec("quote", 3))
        vocab = staleness_vocabulary(specs)
        assert set(vocab.predicates) == {
            "PriceStamp", "PriceUse", "PriceDrop",
            "QuoteStamp", "QuoteUse", "QuoteDrop",
        }
        constraints = staleness_constraints(specs)
        assert set(constraints) == {
            "fresh_use_price", "refresh_deadline_price",
            "fresh_use_quote", "refresh_deadline_quote",
        }

    def test_deterministic_given_seed(self):
        a = clean_staleness_trace(length=15, seed=7)
        b = clean_staleness_trace(length=15, seed=7)
        assert a.facts_per_instant == b.facts_per_instant


class TestServiceIntegration:
    def test_multi_field_set_shards_by_field(self):
        specs = (StalenessSpec("price", 2), StalenessSpec("quote", 2))
        constraints = staleness_constraints(specs)
        service = MonitorService(
            constraints,
            History.empty(staleness_vocabulary(specs)),
            shards=4,
        )
        # Each field's stamp/use/drop relations are private to the
        # field, so the partition gives one shard per field.
        assert service.shard_count == 2

    def test_end_to_end_detection_through_service(self):
        trace = trace_with_stale_use(length=18, budget=2, at=10)
        service = MonitorService(
            staleness_constraints((StalenessSpec("price", 2),)),
            History.empty(trace.vocabulary),
            shards=2,
        )
        for state in trace.states():
            service.apply_state(state, session="feed")
        assert service.violations() == {"fresh_use_price": 11}
        assert service.sessions() == {"feed": 18}
