"""Tests for the workload generators."""

import pytest

from repro.database import vocabulary
from repro.logic.classify import classify
from repro.logic.safety import is_syntactically_safe
from repro.workloads import (
    ConstraintConfig,
    HistoryConfig,
    ORDER_VOCABULARY,
    OrderWorkloadConfig,
    PTLConfig,
    clean_trace,
    fifo_fill,
    fill_after_submit_past,
    fixed_domain_history,
    generate_orders,
    no_fill_before_submit,
    random_history,
    random_ptl,
    random_universal_constraint,
    sparse_growing_history,
    standard_constraints,
    submit_once,
    trace_with_duplicate,
    trace_with_out_of_order_fill,
)


class TestOrderConstraints:
    def test_all_standard_constraints_are_checkable(self):
        for name, constraint in standard_constraints().items():
            info = classify(constraint)
            assert info.is_universal, name
            assert is_syntactically_safe(constraint), name

    def test_past_audit_is_past_formula(self):
        from repro.logic.classify import uses_past

        f = fill_after_submit_past()
        # G (past): future G over a past body.
        assert uses_past(f)

    def test_future_audit_universal(self):
        assert classify(no_fill_before_submit()).is_universal


class TestOrderGenerator:
    def test_deterministic_given_seed(self):
        a = generate_orders(OrderWorkloadConfig(length=20, seed=5))
        b = generate_orders(OrderWorkloadConfig(length=20, seed=5))
        assert a.facts_per_instant == b.facts_per_instant

    def test_length(self):
        assert len(clean_trace(15).facts_per_instant) == 15

    def test_clean_trace_respects_constraints(self):
        from repro.core import potentially_satisfied

        trace = clean_trace(15, seed=3)
        history = trace.history()
        for name, constraint in standard_constraints().items():
            assert potentially_satisfied(constraint, history), name

    def test_duplicate_injection_violates_submit_once(self):
        from repro.core import potentially_satisfied

        trace = trace_with_duplicate(15, violate_at=10, seed=3)
        history = trace.history()
        assert not potentially_satisfied(submit_once(), history)

    def test_out_of_order_injection_violates_fifo(self):
        from repro.core import potentially_satisfied

        trace = trace_with_out_of_order_fill(20, violate_at=10, seed=2)
        history = trace.history()
        assert not potentially_satisfied(fifo_fill(), history)

    def test_fifo_discipline_without_injection(self):
        trace = clean_trace(30, seed=8)
        fills = [order for _t, order in trace.filled]
        assert fills == sorted(fills)

    def test_states_match_history(self):
        trace = clean_trace(5, seed=0)
        assert tuple(trace.states()) == trace.history().states


class TestRandomHistories:
    def test_shape(self):
        v = vocabulary({"p": 1, "q": 2})
        h = random_history(v, HistoryConfig(length=7, domain_size=3, seed=1))
        assert len(h) == 7
        assert h.relevant_elements() <= set(range(3))

    def test_deterministic(self):
        v = vocabulary({"p": 1})
        config = HistoryConfig(length=5, seed=9)
        assert random_history(v, config) == random_history(v, config)

    def test_density_extremes(self):
        v = vocabulary({"p": 1})
        empty = random_history(
            v, HistoryConfig(length=3, domain_size=3, density=0.0)
        )
        full = random_history(
            v, HistoryConfig(length=3, domain_size=3, density=1.0)
        )
        assert empty.fact_count() == 0
        assert full.fact_count() == 9

    def test_sparse_growing_history_grows(self):
        v = vocabulary({"p": 1})
        h = sparse_growing_history(v, length=6, elements_per_state=2)
        assert len(h.relevant_elements()) >= 12

    def test_sparse_growing_requires_unary(self):
        with pytest.raises(ValueError):
            sparse_growing_history(vocabulary({"e": 2}), length=3)

    def test_fixed_domain_history_bounded(self):
        v = vocabulary({"p": 1})
        h = fixed_domain_history(v, length=10, domain_size=4)
        assert h.relevant_elements() <= set(range(4))


class TestRandomFormulas:
    @pytest.mark.parametrize("seed", range(10))
    def test_ptl_formulas_have_letters(self, seed):
        f = random_ptl(PTLConfig(size=7, seed=seed))
        assert f.propositions()

    @pytest.mark.parametrize("seed", range(10))
    def test_universal_constraints_in_fragment(self, seed):
        f = random_universal_constraint(
            ORDER_VOCABULARY, ConstraintConfig(seed=seed)
        )
        info = classify(f)
        assert info.is_universal
        assert is_syntactically_safe(f)
        assert f.is_closed()

    def test_deterministic(self):
        c = ConstraintConfig(seed=4)
        assert random_universal_constraint(
            ORDER_VOCABULARY, c
        ) == random_universal_constraint(ORDER_VOCABULARY, c)
